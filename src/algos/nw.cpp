#include "algos/nw.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.hpp"

namespace quetzal::algos {

using isa::addrOf;
using isa::Pred;
using isa::VReg;

namespace {

enum Site : std::uint64_t
{
    kSiteA = 0x300,   //!< (i, j-1) diagonal load
    kSiteB = 0x301,   //!< (i-1, j) diagonal load
    kSiteC = 0x302,   //!< (i-1, j-1) diagonal load
    kSiteP = 0x303,   //!< pattern chars
    kSiteT = 0x304,   //!< reversed-text chars
    kSiteV = 0x305,   //!< value store
    kSiteTb = 0x306,  //!< traceback reads
};

/**
 * Misaligned store-to-load forwarding penalty: the diagonal loads read
 * data stored one diagonal earlier at a one-element offset, which
 * defeats the forwarding network (see DESIGN.md).
 */
constexpr sim::Cycle kForwardPenalty = 6;

/** Diagonal-linearized (m+1) x (n+1) DP table. */
class DiagTable
{
  public:
    DiagTable(std::int64_t m, std::int64_t n) : m_(m), n_(n)
    {
        off_.resize(static_cast<std::size_t>(m + n + 2), 0);
        std::int64_t total = 0;
        for (std::int64_t d = 0; d <= m + n; ++d) {
            off_[static_cast<std::size_t>(d)] = total;
            total += iHi(d) - iLo(d) + 1;
        }
        off_[static_cast<std::size_t>(m + n + 1)] = total;
        v_.assign(static_cast<std::size_t>(total) + 32, 0);
    }

    std::int64_t iLo(std::int64_t d) const { return std::max<std::int64_t>(0, d - n_); }
    std::int64_t iHi(std::int64_t d) const { return std::min(m_, d); }

    /** Cell (i, j). */
    std::int32_t
    at(std::int64_t i, std::int64_t j) const
    {
        return v_[index(i, j)];
    }

    void
    set(std::int64_t i, std::int64_t j, std::int32_t value)
    {
        v_[index(i, j)] = value;
    }

    /** Host pointer for the run starting at (i, d - i). */
    std::int32_t *
    ptr(std::int64_t d, std::int64_t i)
    {
        return v_.data() + off_[static_cast<std::size_t>(d)] +
               (i - iLo(d));
    }

    const std::int32_t *
    ptr(std::int64_t d, std::int64_t i) const
    {
        return v_.data() + off_[static_cast<std::size_t>(d)] +
               (i - iLo(d));
    }

  private:
    std::size_t
    index(std::int64_t i, std::int64_t j) const
    {
        const std::int64_t d = i + j;
        panic_if_not(i >= iLo(d) && i <= iHi(d),
                     "NW table access ({}, {}) out of range", i, j);
        return static_cast<std::size_t>(
            off_[static_cast<std::size_t>(d)] + (i - iLo(d)));
    }

    std::int64_t m_, n_;
    std::vector<std::int64_t> off_;
    std::vector<std::int32_t> v_;
};

/** Fill boundary cells of diagonal @p d (i = 0 and j = 0 edges). */
void
fillBoundary(DiagTable &tab, std::int64_t d, std::int64_t m,
             std::int64_t n)
{
    if (d <= n)
        tab.set(0, d, static_cast<std::int32_t>(d));
    if (d <= m && d > 0)
        tab.set(d, 0, static_cast<std::int32_t>(d));
}

/** Shared traceback over the completed table. */
Cigar
nwTraceback(const DiagTable &tab, std::string_view p, std::string_view t,
            isa::VectorUnit *vpu)
{
    const auto m = static_cast<std::int64_t>(p.size());
    const auto n = static_cast<std::int64_t>(t.size());
    Cigar rev;
    std::int64_t i = m, j = n;
    while (i > 0 || j > 0) {
        if (vpu) {
            vpu->scalarLoad(kSiteTb, tab.ptr(i + j, i), 4);
            vpu->scalarOps(3);
        }
        if (i == 0) {
            rev.append('I');
            --j;
            continue;
        }
        if (j == 0) {
            rev.append('D');
            --i;
            continue;
        }
        const std::int32_t here = tab.at(i, j);
        const bool match = p[static_cast<std::size_t>(i - 1)] ==
                           t[static_cast<std::size_t>(j - 1)];
        if (here == tab.at(i - 1, j - 1) + (match ? 0 : 1)) {
            rev.append(match ? 'M' : 'X');
            --i;
            --j;
        } else if (here == tab.at(i, j - 1) + 1) {
            rev.append('I');
            --j;
        } else {
            panic_if_not(here == tab.at(i - 1, j) + 1,
                         "NW traceback: inconsistent cell ({}, {})", i,
                         j);
            rev.append('D');
            --i;
        }
    }
    std::reverse(rev.ops.begin(), rev.ops.end());
    return rev;
}

/** Reference / Base scalar fill. */
void
fillScalar(DiagTable &tab, std::string_view p, std::string_view t,
           isa::BaseUnit *bu)
{
    const auto m = static_cast<std::int64_t>(p.size());
    const auto n = static_cast<std::int64_t>(t.size());
    tab.set(0, 0, 0);
    for (std::int64_t d = 1; d <= m + n; ++d) {
        fillBoundary(tab, d, m, n);
        const std::int64_t lo = std::max<std::int64_t>(1, d - n);
        const std::int64_t hi = std::min(m, d - 1);
        if (lo > hi)
            continue;
        // Diagonal-major layout makes all three operand runs and the
        // output run contiguous: hoist the row pointers and index with
        // k = i - lo (same cells nwCell() reads, minus the per-cell
        // offset recomputation). r1[k] is (i-1, j), r1[k+1] is
        // (i, j-1), r2[k] is (i-1, j-1).
        const std::int32_t *r1 = tab.ptr(d - 1, lo - 1);
        const std::int32_t *r2 = tab.ptr(d - 2, lo - 1);
        std::int32_t *outRow = tab.ptr(d, lo);
        for (std::int64_t i = lo; i <= hi; ++i) {
            const std::int64_t j = d - i;
            const std::int64_t k = i - lo;
            if (bu) {
                using sim::OpClass;
                const sim::MemOp cellLoads[] = {
                    {OpClass::ScalarLoad, kSiteA, addrOf(r1 + k + 1), 4},
                    {OpClass::ScalarLoad, kSiteB, addrOf(r1 + k), 4},
                    {OpClass::ScalarLoad, kSiteC, addrOf(r2 + k), 4},
                    {OpClass::ScalarLoad, kSiteP,
                     addrOf(&p[static_cast<std::size_t>(i - 1)]), 1},
                    {OpClass::ScalarLoad, kSiteT,
                     addrOf(&t[static_cast<std::size_t>(j - 1)]), 1},
                };
                bu->loads(cellLoads);
                bu->alu(4);
            }
            const std::int32_t ins = r1[k + 1] + 1;
            const std::int32_t del = r1[k] + 1;
            const std::int32_t sub =
                r2[k] + (p[static_cast<std::size_t>(i - 1)] ==
                                 t[static_cast<std::size_t>(j - 1)]
                             ? 0
                             : 1);
            const std::int32_t value = std::min(ins, std::min(del, sub));
            outRow[k] = value;
            if (bu)
                bu->storeInt(kSiteV, outRow + k, value);
        }
    }
}

/**
 * Vec / Qz vector fill along anti-diagonals.
 *
 * The Vec path loads the previous two diagonals from the cache
 * hierarchy, paying the misaligned store-to-load forwarding penalty
 * on the diagonal-to-diagonal chain. The Qz path follows Fig. 7: the
 * rolling diagonals live in the QBUFFERs (double-buffered by parity;
 * the current diagonal overwrites the d-2 generation behind its last
 * reader), served by 2-cycle qzload reads. The full table is written
 * to memory either way — the traceback needs it.
 */
void
fillVector(DiagTable &tab, std::string_view p, std::string_view t,
           isa::VectorUnit &vpu, accel::QzUnit *qz)
{
    constexpr unsigned L = isa::kLanes32;
    const auto m = static_cast<std::int64_t>(p.size());
    const auto n = static_cast<std::int64_t>(t.size());

    // Reversed text so both residue streams are contiguous along a
    // diagonal; building it is charged like the real implementations.
    std::string trev(t.rbegin(), t.rend());
    for (std::size_t c = 0; c < trev.size(); c += 64) {
        const unsigned bytes =
            static_cast<unsigned>(std::min<std::size_t>(64,
                                                        trev.size() - c));
        const VReg chunk = vpu.load(kSiteT, trev.data() + c, bytes);
        vpu.store(kSiteT, trev.data() + c, chunk, bytes);
    }

    const std::size_t diagCap =
        qz ? qz->buffer(accel::QzSel::Buf0)
                 .capacityElements(genomics::ElementSize::Bits64)
           : 0;
    const bool useQz =
        qz && static_cast<std::size_t>(std::min(m, n) + 2) <= diagCap;
    if (qz) {
        fatal_if(!useQz,
                 "NW diagonals of {} cells exceed the QBUFFER 64-bit "
                 "capacity {}; cap the sequence length",
                 std::min(m, n) + 1, diagCap);
        qz->qzconf(diagCap, diagCap, genomics::ElementSize::Bits64);
    }
    auto bufOf = [](std::int64_t d) {
        return (d & 1) ? accel::QzSel::Buf1 : accel::QzSel::Buf0;
    };

    sim::Tag qzDep{};
    // Rows are stored packed: one 64-bit QBUFFER element holds two
    // int32 cells, so a 16-cell row moves in ONE qzload / qzstore
    // (8 lanes). Odd 32-bit offsets add one vector ext to realign.
    auto qzReadRow = [&](std::int64_t d, std::int64_t slot,
                         unsigned cnt) {
        const accel::QzSel sel = bufOf(d);
        const unsigned lanes =
            std::min(8u, (static_cast<unsigned>(slot & 1) + cnt + 1) / 2);
        const isa::Pred p = vpu.whilelt(0, lanes, 8);
        VReg idx;
        for (unsigned l = 0; l < 8; ++l)
            idx.words[l] = static_cast<std::uint64_t>(slot / 2 + l);
        idx.tag = qzDep;
        VReg row = qz->qzload(idx, sel, p, 8);
        if (slot & 1)
            row = vpu.shr64i(row, 32); // ext: realign odd offsets
        return row;
    };
    auto qzWriteRow = [&](std::int64_t d, std::int64_t slot,
                          const VReg &row, unsigned cnt) {
        const accel::QzSel sel = bufOf(d);
        const unsigned lanes = std::min(8u, (cnt + 1) / 2);
        VReg idx;
        for (unsigned l = 0; l < 8; ++l)
            idx.words[l] = static_cast<std::uint64_t>(slot / 2 + l);
        idx.tag = row.tag;
        qz->qzstore(row, idx, sel, vpu.whilelt(0, lanes, 8), 8);
        qzDep = row.tag;
    };

    const VReg vone = vpu.dup32(1);
    tab.set(0, 0, 0);
    sim::Tag prevStore{};
    for (std::int64_t d = 1; d <= m + n; ++d) {
        fillBoundary(tab, d, m, n);
        vpu.scalarOps(2);
        const std::int64_t lo = std::max<std::int64_t>(1, d - n);
        const std::int64_t hi = std::min(m, d - 1);
        sim::Tag diagStore{};
        // Forwarding conflicts (and the QBUFFER remedy) only matter
        // on narrow diagonals, where the previous diagonal's store is
        // still in flight when this one loads it; wide diagonals are
        // throughput-bound streaming.
        const bool narrow = hi - lo + 1 <= 2 * static_cast<int>(L);
        for (std::int64_t i0 = lo; i0 <= hi;
             i0 += static_cast<std::int64_t>(L)) {
            const unsigned cnt = static_cast<unsigned>(
                std::min<std::int64_t>(L, hi - i0 + 1));
            const unsigned bytes = cnt * 4;
            using VU = isa::VectorUnit;
            VReg a, b, c, pcv, tcv;
            if (useQz && narrow) {
                a = qzReadRow(d - 1, i0 - tab.iLo(d - 1), cnt);
                b = qzReadRow(d - 1, i0 - 1 - tab.iLo(d - 1), cnt);
                c = qzReadRow(d - 2, i0 - 1 - tab.iLo(d - 2), cnt);
                // The operand cells are contiguous runs on the two
                // previous diagonals; bulk-copy them into the low cnt
                // elements (lanes >= cnt keep the qzload contents,
                // exactly as the old per-lane overwrite left them).
                std::memcpy(a.words.data(), tab.ptr(d - 1, i0), bytes);
                std::memcpy(b.words.data(), tab.ptr(d - 1, i0 - 1),
                            bytes);
                std::memcpy(c.words.data(), tab.ptr(d - 2, i0 - 1),
                            bytes);
                pcv = vpu.load8to32(kSiteP, p.data() + (i0 - 1), cnt);
                tcv = vpu.load8to32(kSiteT,
                                    trev.data() + (n - d + i0), cnt);
            } else {
                // On narrow diagonals the previous diagonal was stored
                // moments ago at a one-element offset: forwarding
                // conflict. Wide diagonals stream without conflicts.
                const sim::Tag fwd =
                    narrow ? sim::Tag{prevStore.ready + kForwardPenalty,
                                      prevStore.mem}
                           : sim::Tag{};
                // Two charge runs per slice, each register rebuilt
                // from its own tag — byte-identical to the per-op
                // load()/load8to32() sequence.
                const sim::MemOp fwdLoads[] = {
                    {sim::OpClass::VecLoad, kSiteA,
                     addrOf(tab.ptr(d - 1, i0)), bytes},
                    {sim::OpClass::VecLoad, kSiteB,
                     addrOf(tab.ptr(d - 1, i0 - 1)), bytes},
                };
                sim::Tag ft[2];
                vpu.chargeMemRun(fwdLoads, fwd, ft);
                a = VU::lanes(tab.ptr(d - 1, i0), bytes, ft[0]);
                b = VU::lanes(tab.ptr(d - 1, i0 - 1), bytes, ft[1]);

                const sim::MemOp freeLoads[] = {
                    {sim::OpClass::VecLoad, kSiteC,
                     addrOf(tab.ptr(d - 2, i0 - 1)), bytes},
                    {sim::OpClass::VecLoad, kSiteP,
                     addrOf(p.data() + (i0 - 1)), cnt},
                    {sim::OpClass::VecLoad, kSiteT,
                     addrOf(trev.data() + (n - d + i0)), cnt},
                };
                sim::Tag rt[3];
                vpu.chargeMemRun(freeLoads, sim::Tag{}, rt);
                c = VU::lanes(tab.ptr(d - 2, i0 - 1), bytes, rt[0]);
                pcv = vpu.widenLanes8to32(p.data() + (i0 - 1), cnt,
                                          rt[1]);
                tcv = vpu.widenLanes8to32(
                    trev.data() + (n - d + i0), cnt, rt[2]);
            }

            // Substitution-cost vector from the contiguous residue
            // loads.
            const VReg &pc = pcv;
            const VReg &tc = tcv;
            const Pred lanes = vpu.whilelt(0, cnt, L);
            const Pred eq = vpu.cmpeq32(pc, tc, lanes, L);
            const VReg cost = vpu.sel32(eq, vpu.dup32(0), vone);

            const VReg value = vpu.min32(
                vpu.min32(vpu.add32i(a, 1), vpu.add32i(b, 1)),
                vpu.add32(c, cost));
            // The vector math equals the golden recurrence; the cnt
            // result cells are one contiguous run on diagonal d.
            std::memcpy(tab.ptr(d, i0), value.words.data(), bytes);
            if (useQz && narrow)
                qzWriteRow(d, i0 - tab.iLo(d), value, cnt);
            diagStore = vpu.store(kSiteV, tab.ptr(d, i0), value, bytes);
        }
        prevStore = diagStore;
    }
}

} // namespace

AlignResult
nwAlign(Variant variant, std::string_view pattern, std::string_view text,
        isa::VectorUnit *vpu, accel::QzUnit *qz, bool traceback)
{
    AlignResult result;
    if (pattern.empty() || text.empty()) {
        if (pattern.empty() && !text.empty()) {
            result.score = static_cast<std::int64_t>(text.size());
            if (traceback)
                result.cigar.append('I', text.size());
        } else if (!pattern.empty()) {
            result.score = static_cast<std::int64_t>(pattern.size());
            if (traceback)
                result.cigar.append('D', pattern.size());
        }
        return result;
    }

    const auto m = static_cast<std::int64_t>(pattern.size());
    const auto n = static_cast<std::int64_t>(text.size());
    DiagTable tab(m, n);

    switch (variant) {
      case Variant::Ref:
        fillScalar(tab, pattern, text, nullptr);
        break;
      case Variant::Base: {
        panic_if_not(vpu != nullptr, "Base NW needs a VectorUnit");
        isa::BaseUnit bu(vpu->pipeline());
        fillScalar(tab, pattern, text, &bu);
        break;
      }
      case Variant::Vec:
        panic_if_not(vpu != nullptr, "Vec NW needs a VectorUnit");
        fillVector(tab, pattern, text, *vpu, nullptr);
        break;
      case Variant::Qz:
      case Variant::QzC:
        panic_if_not(vpu != nullptr && qz != nullptr,
                     "Qz NW needs a VectorUnit and a QzUnit");
        fillVector(tab, pattern, text, *vpu, qz);
        break;
    }

    result.score = tab.at(m, n);
    if (traceback)
        result.cigar = nwTraceback(
            tab, pattern, text,
            variant == Variant::Ref ? nullptr : vpu);
    return result;
}

} // namespace quetzal::algos
