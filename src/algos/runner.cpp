#include "algos/runner.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "algos/biwfa.hpp"
#include "algos/nw.hpp"
#include "algos/sneakysnake.hpp"
#include "algos/swg.hpp"
#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "common/logging.hpp"

namespace quetzal::algos {

using genomics::ElementSize;
using genomics::PairDataset;

const char *
algoName(AlgoKind kind)
{
    switch (kind) {
      case AlgoKind::Wfa:
        return "WFA";
      case AlgoKind::BiWfa:
        return "BiWFA";
      case AlgoKind::SneakySnake:
        return "SS";
      case AlgoKind::Nw:
        return "NW";
      case AlgoKind::Swg:
        return "SW";
      case AlgoKind::SsWfa:
        return "SS+WFA";
    }
    return "?";
}

namespace {

ElementSize
esizeFor(genomics::AlphabetKind alphabet)
{
    return alphabet == genomics::AlphabetKind::Protein
               ? ElementSize::Bits8
               : ElementSize::Bits2;
}

/** Everything a run needs on the simulated-core side. */
struct CoreRig
{
    sim::SimContext ctx;
    isa::VectorUnit vpu;
    std::optional<accel::QzUnit> qz;

    explicit CoreRig(const sim::SystemParams &params)
        : ctx(params), vpu(ctx.pipeline())
    {
        if (params.quetzal.present)
            qz.emplace(vpu, params.quetzal);
    }

    accel::QzUnit *qzPtr() { return qz ? &*qz : nullptr; }
};

sim::SystemParams
systemFor(const RunOptions &options)
{
    sim::SystemParams params = options.system;
    if (needsQuetzal(options.variant) && !params.quetzal.present)
        params = sim::SystemParams::withQuetzal();
    return params;
}

void
harvest(RunResult &out, CoreRig &rig)
{
    out.cycles = rig.ctx.pipeline().totalCycles();
    out.instructions = rig.ctx.pipeline().instructions();
    out.memRequests = rig.ctx.mem().totalRequests();
    out.dramBytes = rig.ctx.mem().dramBytes();
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(sim::StallKind::NumKinds); ++k)
        out.stalls[k] = rig.ctx.pipeline().stallCycles(
            static_cast<sim::StallKind>(k));
}

} // namespace

PairDataset
mixWithDecoys(const PairDataset &dataset)
{
    PairDataset mixed = dataset;
    const std::size_t count = mixed.pairs.size();
    for (std::size_t i = 1; i < count; i += 2) {
        // Swap in the next pair's text: unrelated to this pattern.
        mixed.pairs[i].text = dataset.pairs[(i + 1) % count].text;
        mixed.pairs[i].trueEdits = -1;
    }
    return mixed;
}

RunResult
runAlgorithm(AlgoKind kind, const PairDataset &dataset,
             const RunOptions &options)
{
    RunResult out;
    out.algo = algoName(kind);
    out.variant = std::string(variantName(options.variant));
    out.dataset = dataset.name;

    fatal_if(options.variant == Variant::Ref,
             "runAlgorithm measures timed variants; Ref is the golden "
             "model it verifies against");

    CoreRig rig(systemFor(options));
    const ElementSize esize = esizeFor(options.alphabet);

    // Variant under test and untimed golden model. Only the timed
    // engine gets the resource budget: the golden model must stay
    // exact so degraded pairs can still be sanity-checked.
    auto engine = makeWfaEngine(options.variant, &rig.vpu, rig.qzPtr());
    engine->setBudget(options.budget);
    auto refEngine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
    auto ssEngine = makeSsEngine(options.variant, &rig.vpu, rig.qzPtr());
    auto ssRef = makeSsEngine(Variant::Ref, nullptr, nullptr);

    SsConfig ssConfig;
    ssConfig.editThreshold =
        options.ssThreshold > 0
            ? options.ssThreshold
            : defaultSsThreshold(dataset.readLength, dataset.errorRate);

    const std::size_t limit =
        std::min<std::size_t>(options.maxPairs, dataset.pairs.size());
    for (std::size_t idx = 0; idx < limit; ++idx) {
        // Pairs are independent work items; remap recycled host
        // memory so cycle counts don't depend on allocator state.
        rig.ctx.mem().newEpoch();
        const auto &pair = dataset.pairs[idx];
        std::string_view pattern = pair.pattern;
        std::string_view text = pair.text;
        if (pattern.size() > options.maxLen)
            pattern = pattern.substr(0, options.maxLen);
        if (text.size() > options.maxLen)
            text = text.substr(0, options.maxLen);
        ++out.pairs;

        switch (kind) {
          case AlgoKind::Wfa: {
            const AlignResult got = wfaAlign(*engine, pattern, text,
                                             options.traceback, esize);
            out.totalScore += got.score;
            out.dpCells += wfaCellCount(got.score);
            out.degradedPairs += got.degraded ? 1 : 0;
            if (options.verify && !got.degraded) {
                const AlignResult want =
                    wfaAlign(*refEngine, pattern, text,
                             options.traceback);
                out.outputsMatch &= got.score == want.score;
                if (options.traceback) {
                    out.outputsMatch &=
                        got.cigar.ops == want.cigar.ops &&
                        validateCigar(pattern, text, got.cigar);
                }
            } else if (options.verify && options.traceback) {
                // Degraded pairs: the score is no longer guaranteed
                // optimal, but the CIGAR must still replay cleanly.
                out.outputsMatch &=
                    validateCigar(pattern, text, got.cigar);
            }
            break;
          }
          case AlgoKind::BiWfa: {
            const AlignResult got = biwfaAlign(*engine, pattern, text,
                                               options.traceback, esize);
            out.totalScore += got.score;
            out.dpCells += wfaCellCount(got.score);
            out.degradedPairs += got.degraded ? 1 : 0;
            if (options.verify && !got.degraded) {
                const std::int64_t want =
                    wfaScore(*refEngine, pattern, text);
                out.outputsMatch &= got.score == want;
                if (options.traceback) {
                    out.outputsMatch &=
                        got.cigar.edits() == want &&
                        validateCigar(pattern, text, got.cigar);
                }
            } else if (options.verify && options.traceback) {
                out.outputsMatch &=
                    validateCigar(pattern, text, got.cigar);
            }
            break;
          }
          case AlgoKind::SneakySnake: {
            const SsResult got =
                sneakySnake(*ssEngine, pattern, text, ssConfig, esize);
            out.totalScore += got.editBound;
            out.accepted += got.accepted ? 1 : 0;
            if (options.verify) {
                const SsResult want =
                    sneakySnake(*ssRef, pattern, text, ssConfig);
                out.outputsMatch &=
                    got.accepted == want.accepted &&
                    got.editBound == want.editBound;
            }
            break;
          }
          case AlgoKind::Nw: {
            const AlignResult got =
                nwAlign(options.variant, pattern, text, &rig.vpu,
                        rig.qzPtr(), options.traceback);
            out.totalScore += got.score;
            out.dpCells += static_cast<std::uint64_t>(pattern.size()) *
                           text.size();
            if (options.verify) {
                const AlignResult want = nwAlign(
                    Variant::Ref, pattern, text, nullptr, nullptr,
                    options.traceback);
                out.outputsMatch &= got.score == want.score;
                if (options.traceback)
                    out.outputsMatch &= got.cigar.ops == want.cigar.ops;
            }
            break;
          }
          case AlgoKind::Swg: {
            const SwgResult got =
                swgAlign(options.variant, pattern, text, SwgParams{},
                         &rig.vpu, rig.qzPtr(), options.traceback);
            out.totalScore += got.score;
            out.dpCells +=
                static_cast<std::uint64_t>(pattern.size() + text.size()) *
                31;
            if (options.verify) {
                const SwgResult want =
                    swgAlign(Variant::Ref, pattern, text, SwgParams{},
                             nullptr, nullptr, options.traceback);
                out.outputsMatch &= got.score == want.score;
                if (options.traceback)
                    out.outputsMatch &= got.cigar.ops == want.cigar.ops;
            }
            break;
          }
          case AlgoKind::SsWfa: {
            const SsResult filter =
                sneakySnake(*ssEngine, pattern, text, ssConfig, esize);
            if (options.verify) {
                const SsResult want =
                    sneakySnake(*ssRef, pattern, text, ssConfig);
                out.outputsMatch &= filter.accepted == want.accepted;
            }
            if (filter.accepted) {
                ++out.accepted;
                const AlignResult got = wfaAlign(
                    *engine, pattern, text, options.traceback, esize);
                out.totalScore += got.score;
                out.dpCells += wfaCellCount(got.score);
                out.degradedPairs += got.degraded ? 1 : 0;
                if (options.verify && !got.degraded) {
                    const AlignResult want = wfaAlign(
                        *refEngine, pattern, text, options.traceback);
                    out.outputsMatch &= got.score == want.score;
                }
            }
            break;
          }
        }
    }

    harvest(out, rig);
    return out;
}

} // namespace quetzal::algos
