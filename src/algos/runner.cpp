#include "algos/runner.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "algos/biwfa.hpp"
#include "algos/nw.hpp"
#include "algos/sneakysnake.hpp"
#include "algos/swg.hpp"
#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "algos/workload.hpp"
#include "common/logging.hpp"
#include "genomics/datasets.hpp"
#include "genomics/pairsource.hpp"

namespace quetzal::algos {

using genomics::ElementSize;
using genomics::PairDataset;

namespace {

ElementSize
esizeFor(genomics::AlphabetKind alphabet)
{
    return alphabet == genomics::AlphabetKind::Protein
               ? ElementSize::Bits8
               : ElementSize::Bits2;
}

/**
 * Shared pair-loop of the genomics workloads: fresh core, per-pair
 * memory epochs, maxLen truncation, and the final counter harvest are
 * identical across algorithms; only runPair() differs.
 */
class GenomicsWorkload : public Workload
{
  public:
    GenomicsWorkload(const char *name, AlgoKind kind)
        : name_(name), kind_(kind)
    {
    }

    std::string_view name() const override { return name_; }
    std::optional<AlgoKind> kind() const override { return kind_; }

    std::vector<std::string>
    datasetNames() const override
    {
        std::vector<std::string> names;
        for (const auto &spec : genomics::datasetCatalog())
            names.push_back(spec.name);
        return names;
    }

    PairDataset
    makeDataset(std::string_view dataset, double scale) const override
    {
        return genomics::makeDataset(dataset, scale);
    }

    RunResult
    run(const PairDataset &dataset,
        const RunOptions &options) const override
    {
        // The streaming loop is the one implementation; a dataset is
        // just a zero-copy source over its vector.
        genomics::DatasetPairSource source(dataset);
        return runStream(source, options);
    }

    RunResult
    runStream(genomics::PairSource &source,
              const RunOptions &options) const override
    {
        RunResult out;
        out.algo = name_;
        out.variant = std::string(variantName(options.variant));
        out.dataset = source.info().name;

        fatal_if(options.variant == Variant::Ref,
                 "workloads measure timed variants; Ref is the golden "
                 "model they verify against");

        PairRig rig(source.info(), options);
        const std::size_t limit =
            std::min<std::size_t>(options.maxPairs, source.size());
        source.rewind();
        genomics::PairBatch batch;
        while (out.pairs < limit && source.next(batch) > 0) {
            for (const genomics::PairView &pair : batch.views()) {
                if (out.pairs >= limit)
                    break;
                // Pairs are independent work items; remap recycled
                // host memory so cycle counts don't depend on
                // allocator state.
                rig.core.ctx.mem().newEpoch();
                std::string_view pattern = pair.pattern;
                std::string_view text = pair.text;
                if (pattern.size() > options.maxLen)
                    pattern = pattern.substr(0, options.maxLen);
                if (text.size() > options.maxLen)
                    text = text.substr(0, options.maxLen);
                ++out.pairs;
                runPair(rig, pattern, text, options, out);
            }
        }

        harvestCore(out, rig.core);
        return out;
    }

  protected:
    /** Per-run simulated core plus the engines every algorithm shares. */
    struct PairRig
    {
        WorkloadCore core;
        ElementSize esize;
        std::unique_ptr<WfaEngine> engine;    //!< timed, budgeted
        std::unique_ptr<WfaEngine> refEngine; //!< untimed golden model
        std::unique_ptr<SsEngine> ssEngine;
        std::unique_ptr<SsEngine> ssRef;
        SsConfig ssConfig;

        PairRig(const genomics::SourceInfo &info,
                const RunOptions &options)
            : core(systemFor(options)),
              esize(esizeFor(options.alphabet))
        {
            // Variant under test and untimed golden model. Only the
            // timed engine gets the resource budget: the golden model
            // must stay exact so degraded pairs can still be
            // sanity-checked.
            engine = makeWfaEngine(options.variant, &core.vpu,
                                   core.qzPtr());
            engine->setBudget(options.budget);
            refEngine = makeWfaEngine(Variant::Ref, nullptr, nullptr);
            ssEngine = makeSsEngine(options.variant, &core.vpu,
                                    core.qzPtr());
            ssRef = makeSsEngine(Variant::Ref, nullptr, nullptr);
            ssConfig.editThreshold =
                options.ssThreshold > 0
                    ? options.ssThreshold
                    : defaultSsThreshold(info.readLength,
                                         info.errorRate);
        }
    };

    virtual void runPair(PairRig &rig, std::string_view pattern,
                         std::string_view text,
                         const RunOptions &options,
                         RunResult &out) const = 0;

  private:
    const char *name_;
    AlgoKind kind_;
};

class WfaWorkload final : public GenomicsWorkload
{
  public:
    WfaWorkload() : GenomicsWorkload("WFA", AlgoKind::Wfa) {}

  protected:
    void
    runPair(PairRig &rig, std::string_view pattern,
            std::string_view text, const RunOptions &options,
            RunResult &out) const override
    {
        const AlignResult got = wfaAlign(*rig.engine, pattern, text,
                                         options.traceback, rig.esize);
        out.totalScore += got.score;
        out.dpCells += wfaCellCount(got.score);
        out.degradedPairs += got.degraded ? 1 : 0;
        if (options.verify && !got.degraded) {
            const AlignResult want = wfaAlign(*rig.refEngine, pattern,
                                              text, options.traceback);
            out.outputsMatch &= got.score == want.score;
            if (options.traceback) {
                out.outputsMatch &=
                    got.cigar.ops == want.cigar.ops &&
                    validateCigar(pattern, text, got.cigar);
            }
        } else if (options.verify && options.traceback) {
            // Degraded pairs: the score is no longer guaranteed
            // optimal, but the CIGAR must still replay cleanly.
            out.outputsMatch &= validateCigar(pattern, text, got.cigar);
        }
    }
};

class BiWfaWorkload final : public GenomicsWorkload
{
  public:
    BiWfaWorkload() : GenomicsWorkload("BiWFA", AlgoKind::BiWfa) {}

  protected:
    void
    runPair(PairRig &rig, std::string_view pattern,
            std::string_view text, const RunOptions &options,
            RunResult &out) const override
    {
        const AlignResult got = biwfaAlign(*rig.engine, pattern, text,
                                           options.traceback, rig.esize);
        out.totalScore += got.score;
        out.dpCells += wfaCellCount(got.score);
        out.degradedPairs += got.degraded ? 1 : 0;
        if (options.verify && !got.degraded) {
            const std::int64_t want =
                wfaScore(*rig.refEngine, pattern, text);
            out.outputsMatch &= got.score == want;
            if (options.traceback) {
                out.outputsMatch &=
                    got.cigar.edits() == want &&
                    validateCigar(pattern, text, got.cigar);
            }
        } else if (options.verify && options.traceback) {
            out.outputsMatch &= validateCigar(pattern, text, got.cigar);
        }
    }
};

class SneakySnakeWorkload final : public GenomicsWorkload
{
  public:
    SneakySnakeWorkload()
        : GenomicsWorkload("SS", AlgoKind::SneakySnake)
    {
    }

  protected:
    void
    runPair(PairRig &rig, std::string_view pattern,
            std::string_view text, const RunOptions &options,
            RunResult &out) const override
    {
        const SsResult got = sneakySnake(*rig.ssEngine, pattern, text,
                                         rig.ssConfig, rig.esize);
        out.totalScore += got.editBound;
        out.accepted += got.accepted ? 1 : 0;
        if (options.verify) {
            const SsResult want =
                sneakySnake(*rig.ssRef, pattern, text, rig.ssConfig);
            out.outputsMatch &= got.accepted == want.accepted &&
                                got.editBound == want.editBound;
        }
    }
};

class NwWorkload final : public GenomicsWorkload
{
  public:
    NwWorkload() : GenomicsWorkload("NW", AlgoKind::Nw) {}

  protected:
    void
    runPair(PairRig &rig, std::string_view pattern,
            std::string_view text, const RunOptions &options,
            RunResult &out) const override
    {
        const AlignResult got =
            nwAlign(options.variant, pattern, text, &rig.core.vpu,
                    rig.core.qzPtr(), options.traceback);
        out.totalScore += got.score;
        out.dpCells +=
            static_cast<std::uint64_t>(pattern.size()) * text.size();
        if (options.verify) {
            const AlignResult want =
                nwAlign(Variant::Ref, pattern, text, nullptr, nullptr,
                        options.traceback);
            out.outputsMatch &= got.score == want.score;
            if (options.traceback)
                out.outputsMatch &= got.cigar.ops == want.cigar.ops;
        }
    }
};

class SwgWorkload final : public GenomicsWorkload
{
  public:
    SwgWorkload() : GenomicsWorkload("SW", AlgoKind::Swg) {}

  protected:
    void
    runPair(PairRig &rig, std::string_view pattern,
            std::string_view text, const RunOptions &options,
            RunResult &out) const override
    {
        const SwgResult got =
            swgAlign(options.variant, pattern, text, SwgParams{},
                     &rig.core.vpu, rig.core.qzPtr(),
                     options.traceback);
        out.totalScore += got.score;
        out.dpCells +=
            static_cast<std::uint64_t>(pattern.size() + text.size()) *
            31;
        if (options.verify) {
            const SwgResult want =
                swgAlign(Variant::Ref, pattern, text, SwgParams{},
                         nullptr, nullptr, options.traceback);
            out.outputsMatch &= got.score == want.score;
            if (options.traceback)
                out.outputsMatch &= got.cigar.ops == want.cigar.ops;
        }
    }
};

class SsWfaWorkload final : public GenomicsWorkload
{
  public:
    SsWfaWorkload() : GenomicsWorkload("SS+WFA", AlgoKind::SsWfa) {}

  protected:
    void
    runPair(PairRig &rig, std::string_view pattern,
            std::string_view text, const RunOptions &options,
            RunResult &out) const override
    {
        const SsResult filter = sneakySnake(*rig.ssEngine, pattern,
                                            text, rig.ssConfig,
                                            rig.esize);
        if (options.verify) {
            const SsResult want =
                sneakySnake(*rig.ssRef, pattern, text, rig.ssConfig);
            out.outputsMatch &= filter.accepted == want.accepted;
        }
        if (filter.accepted) {
            ++out.accepted;
            const AlignResult got = wfaAlign(
                *rig.engine, pattern, text, options.traceback,
                rig.esize);
            out.totalScore += got.score;
            out.dpCells += wfaCellCount(got.score);
            out.degradedPairs += got.degraded ? 1 : 0;
            if (options.verify && !got.degraded) {
                const AlignResult want = wfaAlign(
                    *rig.refEngine, pattern, text, options.traceback);
                out.outputsMatch &= got.score == want.score;
            }
        }
    }
};

const WorkloadRegistrar genomicsRegistrars[] = {
    WorkloadRegistrar{std::make_unique<WfaWorkload>()},
    WorkloadRegistrar{std::make_unique<BiWfaWorkload>()},
    WorkloadRegistrar{std::make_unique<SneakySnakeWorkload>()},
    WorkloadRegistrar{std::make_unique<NwWorkload>()},
    WorkloadRegistrar{std::make_unique<SwgWorkload>()},
    WorkloadRegistrar{std::make_unique<SsWfaWorkload>()},
};

} // namespace

namespace detail {

void
anchorAlgoWorkloads()
{
}

} // namespace detail

std::string_view
algoName(AlgoKind kind)
{
    return workloadFor(kind).name();
}

PairDataset
mixWithDecoys(const PairDataset &dataset)
{
    PairDataset mixed = dataset;
    const std::size_t count = mixed.pairs.size();
    for (std::size_t i = 1; i < count; i += 2) {
        // Swap in the next pair's text: unrelated to this pattern.
        mixed.pairs[i].text = dataset.pairs[(i + 1) % count].text;
        mixed.pairs[i].trueEdits = -1;
    }
    return mixed;
}

RunResult
runAlgorithm(AlgoKind kind, const PairDataset &dataset,
             const RunOptions &options)
{
    return workloadFor(kind).run(dataset, options);
}

} // namespace quetzal::algos
