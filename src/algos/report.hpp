/**
 * @file
 * Machine-readable reporting for experiment results: RunResult
 * serialization to JSON (for automation around the bench binaries)
 * and a per-opcode instruction profile of a simulated core.
 */
#ifndef QUETZAL_ALGOS_REPORT_HPP
#define QUETZAL_ALGOS_REPORT_HPP

#include <optional>
#include <string>

#include "algos/faults.hpp"
#include "algos/runner.hpp"
#include "common/json.hpp"
#include "sim/pipeline.hpp"

namespace quetzal::algos {

/** Serialize one evaluation cell to a JSON object string. */
std::string toJson(const RunResult &result);

/** Serialize one cell failure record to a JSON object string. */
std::string toJson(const CellFailure &failure);

/**
 * Rebuild a RunResult from a parsed toJson() object (checkpoint
 * resume). Returns nullopt when required members are missing or
 * mistyped — the loader then re-simulates the cell instead.
 */
std::optional<RunResult> runResultFromJson(const JsonValue &json);

/** Serialize a pipeline's per-opcode instruction profile. */
std::string instructionProfileJson(const sim::Pipeline &pipeline);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_REPORT_HPP
