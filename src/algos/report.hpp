/**
 * @file
 * Machine-readable reporting for experiment results: RunResult and
 * whole-sweep BenchReport serialization to JSON (for automation
 * around the bench binaries), the shard-merge that reassembles a
 * partitioned sweep, and a per-opcode instruction profile of a
 * simulated core.
 */
#ifndef QUETZAL_ALGOS_REPORT_HPP
#define QUETZAL_ALGOS_REPORT_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "algos/batch.hpp"
#include "algos/faults.hpp"
#include "algos/runner.hpp"
#include "common/json.hpp"
#include "sim/pipeline.hpp"

namespace quetzal::algos {

/** Serialize one evaluation cell to a JSON object string. */
std::string toJson(const RunResult &result);

/** Serialize one cell failure record to a JSON object string. */
std::string toJson(const CellFailure &failure);

/**
 * Rebuild a RunResult from a parsed toJson() object (checkpoint
 * resume). Returns nullopt when required members are missing or
 * mistyped — the loader then re-simulates the cell instead.
 */
std::optional<RunResult> runResultFromJson(const JsonValue &json);

/** Rebuild a CellFailure from a parsed toJson() object. */
std::optional<CellFailure> cellFailureFromJson(const JsonValue &json);

/**
 * One bench sweep's machine-readable report — what QZ_BENCH_JSON
 * emits. An unsharded run serializes every cell; a QZ_BENCH_SHARD
 * run serializes only the owned slots plus their global indices
 * ("shard" and "cells" members), which mergeShardReports() uses to
 * reassemble output byte-identical to the unsharded run.
 */
struct BenchReport
{
    std::string bench;
    double scale = 1.0;
    std::uint64_t threads = 0;
    std::uint64_t resumedCells = 0;
    std::uint64_t retries = 0;

    /** Set on per-shard reports only. */
    std::optional<ShardSpec> shard;
    /** Global cell indices of results[] (per-shard reports only). */
    std::vector<std::uint64_t> cells;

    std::vector<RunResult> results;
    std::vector<CellFailure> failures;
};

/**
 * Assemble the report of one finished sweep. When the outcome was
 * sharded, only the owned result slots are included (with their
 * global indices); failure records always carry global indices.
 */
BenchReport makeBenchReport(std::string bench, double scale,
                            std::uint64_t threads,
                            const BatchOutcome &outcome);

/** Serialize a sweep report to a JSON object string. */
std::string toJson(const BenchReport &report);

/** Rebuild a BenchReport from parsed toJson() output (qz-merge). */
std::optional<BenchReport> benchReportFromJson(const JsonValue &json);

/**
 * Merge the per-shard reports of one partitioned sweep into the
 * report an unsharded run would have produced — byte-identical once
 * serialized with toJson(). All N shards must be present, agree on
 * bench/scale/threads, and jointly cover every cell exactly once;
 * anything else is a fatal() diagnostic.
 */
BenchReport mergeShardReports(std::vector<BenchReport> shards);

/** Serialize a pipeline's per-opcode instruction profile. */
std::string instructionProfileJson(const sim::Pipeline &pipeline);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_REPORT_HPP
