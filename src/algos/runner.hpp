/**
 * @file
 * Experiment runner: executes one (algorithm, variant, dataset) cell
 * of the paper's evaluation matrix on a fresh simulated core and
 * reports cycles, instruction counts, stall breakdown, memory traffic,
 * and functional agreement with the untimed reference — the common
 * harness underneath every bench binary and the integration tests.
 */
#ifndef QUETZAL_ALGOS_RUNNER_HPP
#define QUETZAL_ALGOS_RUNNER_HPP

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "algos/variant.hpp"
#include "algos/wfa_engine.hpp"
#include "genomics/datasets.hpp"
#include "genomics/sequence.hpp"
#include "sim/context.hpp"

namespace quetzal::algos {

/** Which algorithm runs. */
enum class AlgoKind
{
    Wfa,
    BiWfa,
    SneakySnake,
    Nw,
    Swg,
    SsWfa, //!< SneakySnake filter + WFA alignment pipeline (Fig. 14b)
};

/**
 * Display name matching the paper — the registered workload's name
 * (see algos/workload.hpp; the registry is the single source of
 * truth for display names).
 */
std::string_view algoName(AlgoKind kind);

/** Runner knobs. */
struct RunOptions
{
    Variant variant = Variant::Base;
    sim::SystemParams system = sim::SystemParams::baseline();
    bool traceback = true;
    std::size_t maxPairs = ~std::size_t{0};
    /** Length cap for the full-table classic DP (paper-style dataset
     *  constraint to keep simulations tractable). */
    std::size_t maxLen = ~std::size_t{0};
    genomics::AlphabetKind alphabet = genomics::AlphabetKind::Dna;
    std::int64_t ssThreshold = 0; //!< 0 derives from the dataset
    bool verify = true;           //!< compare against the Ref variant

    /**
     * Per-pair resource ceilings for the wavefront engines (zero =
     * unlimited). A breach degrades the pair to the pruned variant
     * and counts it in RunResult::degradedPairs; the Ref golden model
     * always runs unbudgeted.
     */
    ResourceBudget budget;
};

/** One cell of the evaluation matrix. */
struct RunResult
{
    std::string algo;
    std::string variant;
    std::string dataset;

    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memRequests = 0; //!< demand requests to the L1
    std::uint64_t dramBytes = 0;
    std::uint64_t pairs = 0;
    std::uint64_t accepted = 0;   //!< SS: pairs passing the filter
    std::int64_t totalScore = 0;
    std::uint64_t dpCells = 0;    //!< for GCUPS accounting
    bool outputsMatch = true;     //!< bitwise agreement with Ref

    /**
     * Pairs where a resource budget forced the pruned fallback.
     * Degraded pairs are excluded from the outputsMatch comparison
     * (their score is valid but not guaranteed optimal).
     */
    std::uint64_t degradedPairs = 0;

    /**
     * Host wall-clock spent simulating this cell, in nanoseconds.
     * Recorded only when QZ_BENCH_HOSTPERF=1 (see BatchRunner) and
     * serialized ("host_ns") only when nonzero, so default reports
     * stay byte-identical across machines, thread counts, and shard
     * merges — host timing is observability, never a simulated metric.
     */
    std::uint64_t hostNanos = 0;

    /** Simulated instructions per host second (0 when untimed). */
    double
    hostInstructionRate() const
    {
        return hostNanos == 0
                   ? 0.0
                   : static_cast<double>(instructions) * 1e9 /
                         static_cast<double>(hostNanos);
    }

    /** Simulated memory accesses per host second (0 when untimed). */
    double
    hostAccessRate() const
    {
        return hostNanos == 0
                   ? 0.0
                   : static_cast<double>(memRequests) * 1e9 /
                         static_cast<double>(hostNanos);
    }

    /** Stall cycles, indexed by sim::StallKind. */
    std::array<std::uint64_t,
               static_cast<std::size_t>(sim::StallKind::NumKinds)>
        stalls{};

    /** Stall cycles attributed to @p kind. */
    std::uint64_t
    stallCycles(sim::StallKind kind) const
    {
        return stalls[static_cast<std::size_t>(kind)];
    }

    sim::CoreDemand
    demand() const
    {
        return sim::CoreDemand{cycles, dramBytes};
    }

    /** Fraction of cycles attributed to cache accesses. */
    double
    cacheFraction() const
    {
        return cycles == 0
                   ? 0.0
                   : static_cast<double>(
                         stallCycles(sim::StallKind::Cache)) /
                         static_cast<double>(cycles);
    }
};

/**
 * Run @p kind / options over @p dataset on a fresh simulated core.
 * Thin wrapper over the workload registry (algos/workload.hpp):
 * dispatch is workloadFor(kind).run(dataset, options).
 */
RunResult runAlgorithm(AlgoKind kind,
                       const genomics::PairDataset &dataset,
                       const RunOptions &options);

/**
 * Replace the text of every second pair with an unrelated window so
 * the SneakySnake filter has something to reject (SS+WFA pipeline
 * workload).
 */
genomics::PairDataset
mixWithDecoys(const genomics::PairDataset &dataset);

/**
 * Speedup of @p test over @p baseline in simulated cycles.
 *
 * A zero-cycle test run has no defined speedup; returning 0.0 here
 * used to masquerade as "infinitely slow", so the undefined case now
 * yields NaN, which the bench tables render as "n/a"
 * (TextTable::num).
 */
inline double
speedup(const RunResult &baseline, const RunResult &test)
{
    return test.cycles == 0
               ? std::numeric_limits<double>::quiet_NaN()
               : static_cast<double>(baseline.cycles) /
                     static_cast<double>(test.cycles);
}

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_RUNNER_HPP
