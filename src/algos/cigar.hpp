/**
 * @file
 * CIGAR (alignment edit transcript) utilities.
 *
 * Convention: the alignment transforms the pattern (query) into the
 * text (target):
 *   'M' match    — consumes one pattern and one text character, equal;
 *   'X' mismatch — consumes one of each, different;
 *   'I' insertion — consumes one text character (gap in the pattern);
 *   'D' deletion  — consumes one pattern character (gap in the text).
 */
#ifndef QUETZAL_ALGOS_CIGAR_HPP
#define QUETZAL_ALGOS_CIGAR_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace quetzal::algos {

/** An alignment transcript: one op character per edit column. */
struct Cigar
{
    std::string ops; //!< 'M', 'X', 'I', 'D' per column

    /** Unit-cost edit distance implied by the transcript. */
    std::int64_t
    edits() const
    {
        std::int64_t count = 0;
        for (char op : ops)
            if (op != 'M')
                ++count;
        return count;
    }

    /** Run-length encoded form, e.g. "23M1X4M2I". */
    std::string rle() const;

    void
    append(char op, std::size_t count = 1)
    {
        ops.append(count, op);
    }
};

/**
 * Check that @p cigar is a valid transcript turning @p pattern into
 * @p text: consumes both fully, 'M' columns match, 'X' columns differ.
 */
bool validateCigar(std::string_view pattern, std::string_view text,
                   const Cigar &cigar);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_CIGAR_HPP
