/**
 * @file
 * Other-domain kernels (Fig. 15b) as registry workloads: histogram
 * and CSR SpMV run through the same Workload interface — and hence
 * the same BatchRunner, JSON, checkpoint, and fault-isolation
 * machinery — as the genomics algorithms.
 *
 * A kernel dataset is a PairDataset with no pairs: its content is
 * fully described by the named params (sizes, seeds), and run()
 * regenerates the input deterministically from them. That keeps
 * checkpoint cell hashes sound without storing the raw arrays.
 */
#include "algos/workload.hpp"

#include "common/logging.hpp"
#include "kernels/histogram.hpp"
#include "kernels/spmv.hpp"

namespace quetzal::algos {

namespace {

using genomics::PairDataset;

/** Shared scaffolding: one self-named dataset, three timed variants. */
class KernelWorkload : public Workload
{
  public:
    std::vector<Variant>
    variants() const override
    {
        // The kernels have no count-ALU variant: QUETZAL+C would
        // measure the same code as QUETZAL.
        return {Variant::Base, Variant::Vec, Variant::Qz};
    }

    std::vector<std::string>
    datasetNames() const override
    {
        return {std::string(name())};
    }

  protected:
    /** Identity fields + the Ref-variant guard every run() starts with. */
    RunResult
    startRun(const PairDataset &dataset,
             const RunOptions &options) const
    {
        fatal_if(options.variant == Variant::Ref,
                 "workloads measure timed variants; Ref is the golden "
                 "model they verify against");
        RunResult out;
        out.algo = name();
        out.variant = std::string(variantName(options.variant));
        out.dataset = dataset.name;
        return out;
    }

    void
    checkDatasetName(std::string_view dataset) const
    {
        fatal_if(dataset != name(),
                 "workload '{}' has no dataset '{}'", name(), dataset);
    }
};

class HistogramWorkload final : public KernelWorkload
{
  public:
    std::string_view name() const override { return "histogram"; }

    PairDataset
    makeDataset(std::string_view dataset, double scale) const override
    {
        checkDatasetName(dataset);
        PairDataset ds;
        ds.name = std::string(name());
        ds.params = {
            {"count",
             std::max<std::uint64_t>(
                 1, static_cast<std::uint64_t>(60000 * scale))},
            {"bins", 1024},
            {"seed", 33},
        };
        return ds;
    }

    RunResult
    run(const PairDataset &dataset,
        const RunOptions &options) const override
    {
        RunResult out = startRun(dataset, options);
        const auto input = kernels::makeHistogramInput(
            dataset.param("count", 60000),
            static_cast<std::uint32_t>(dataset.param("bins", 1024)),
            dataset.param("seed", 33));

        WorkloadCore core(systemFor(options));
        const auto got = kernels::histogram(options.variant, input,
                                            &core.vpu, core.qzPtr());
        out.pairs = 1;
        out.dpCells = input.data.size();
        // Positional checksum so a single swapped bin shows up in the
        // score, not just in outputsMatch.
        for (std::size_t b = 0; b < got.size(); ++b)
            out.totalScore += static_cast<std::int64_t>(got[b]) *
                              static_cast<std::int64_t>(b + 1);
        if (options.verify) {
            const auto want =
                kernels::histogram(Variant::Ref, input);
            out.outputsMatch = got == want;
        }
        harvestCore(out, core);
        return out;
    }
};

class SpmvWorkload final : public KernelWorkload
{
  public:
    std::string_view name() const override { return "spmv"; }

    PairDataset
    makeDataset(std::string_view dataset, double scale) const override
    {
        checkDatasetName(dataset);
        PairDataset ds;
        ds.name = std::string(name());
        ds.params = {
            {"rows",
             std::max<std::uint64_t>(
                 1, static_cast<std::uint64_t>(1500 * scale))},
            {"cols", 2000},
            {"nnz_per_row", 16},
            {"seed", 55},
        };
        return ds;
    }

    RunResult
    run(const PairDataset &dataset,
        const RunOptions &options) const override
    {
        RunResult out = startRun(dataset, options);
        const auto matrix = kernels::makeSparseMatrix(
            dataset.param("rows", 1500), dataset.param("cols", 2000),
            static_cast<unsigned>(dataset.param("nnz_per_row", 16)),
            dataset.param("seed", 55));
        std::vector<std::int64_t> x(matrix.cols);
        for (std::size_t i = 0; i < x.size(); ++i)
            x[i] = static_cast<std::int64_t>((i * 7) % 127) - 63;

        WorkloadCore core(systemFor(options));
        const auto got = kernels::spmv(options.variant, matrix, x,
                                       &core.vpu, core.qzPtr());
        out.pairs = 1;
        out.dpCells = matrix.nnz();
        for (std::size_t r = 0; r < got.size(); ++r)
            out.totalScore +=
                got[r] * static_cast<std::int64_t>(r + 1);
        if (options.verify) {
            const auto want = kernels::spmv(Variant::Ref, matrix, x);
            out.outputsMatch = got == want;
        }
        harvestCore(out, core);
        return out;
    }
};

const WorkloadRegistrar kernelRegistrars[] = {
    WorkloadRegistrar{std::make_unique<HistogramWorkload>()},
    WorkloadRegistrar{std::make_unique<SpmvWorkload>()},
};

} // namespace

namespace detail {

void
anchorKernelWorkloads()
{
}

} // namespace detail

} // namespace quetzal::algos
