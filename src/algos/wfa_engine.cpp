#include "algos/wfa_engine.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace quetzal::algos {

using genomics::ElementSize;
using isa::addrOf;
using isa::Pred;
using isa::VReg;

namespace {

// Static instruction-site ids for the prefetcher (PC proxies).
enum Site : std::uint64_t
{
    kSiteExtOff = 0x100,   //!< extend: wave offset load
    kSiteExtPat = 0x101,   //!< extend: pattern access
    kSiteExtTxt = 0x102,   //!< extend: text access
    kSiteExtSto = 0x103,   //!< extend: wave offset store
    kSiteNwIns = 0x110,    //!< nextWave: k-1 load
    kSiteNwSub = 0x111,    //!< nextWave: k load
    kSiteNwDel = 0x112,    //!< nextWave: k+1 load
    kSiteNwSto = 0x113,    //!< nextWave: store
    kSiteTbHop = 0x120,    //!< traceback candidate reads
    kSiteOvF = 0x130,      //!< overlap scan, forward wave
    kSiteOvR = 0x131,      //!< overlap scan, reverse wave
};

} // namespace

void
WfaEngine::begin(std::string_view pattern, std::string_view text,
                 ElementSize esize)
{
    fatal_if(pattern.empty() || text.empty(),
             "WFA requires non-empty sequences");
    // Engine-local padded copies: word-wise kernels may read a few
    // bytes past either end; distinct sentinels stop every run.
    paddedP_.assign(kSeqPad, '\x01');
    paddedP_.append(pattern);
    paddedP_.append(kSeqPad, '\x01');
    paddedT_.assign(kSeqPad, '\x02');
    paddedT_.append(text);
    paddedT_.append(kSeqPad, '\x02');
    p_ = std::string_view(paddedP_).substr(kSeqPad, pattern.size());
    t_ = std::string_view(paddedT_).substr(kSeqPad, text.size());
    stepsUsed_ = 0;
    waveBytesUsed_ = 0;
    onBegin(esize);
}

void
WfaEngine::onBegin(ElementSize)
{
}

// ====================================================================
// Reference engine: functional only, no timing.
// ====================================================================

namespace {

class RefWfaEngine final : public WfaEngine
{
  public:
    void
    extend(Wave &wave, Dir dir) override
    {
        const auto m = static_cast<std::int64_t>(p_.size());
        const auto n = static_cast<std::int64_t>(t_.size());
        for (int k = wave.lo(); k <= wave.hi(); ++k) {
            std::int32_t j = wave.at(k);
            if (j == kOffNone)
                continue;
            std::int64_t i = static_cast<std::int64_t>(j) - k;
            while (i < m && j < n &&
                   pat(dir, static_cast<std::size_t>(i)) ==
                       txt(dir, static_cast<std::size_t>(j))) {
                ++i;
                ++j;
            }
            wave.set(k, j);
        }
    }

    void
    nextWave(const Wave &prev, Wave &next) override
    {
        for (int k = next.lo(); k <= next.hi(); ++k)
            next.set(k, nextValue(prev, k));
    }

    void
    combineWave(std::span<const WaveTerm> terms, Wave &dst) override
    {
        for (int k = dst.lo(); k <= dst.hi(); ++k)
            dst.set(k, combineValue(terms, k));
    }

    void chargeTracebackHop(const std::int32_t *, const std::int32_t *,
                            const std::int32_t *) override
    {
    }
    void chargeTracebackRun(std::size_t) override {}
    void chargeOverlapCheck(const Wave &, const Wave &, int,
                            int) override
    {
    }
};

// ====================================================================
// Base engine: timed scalar (the auto-vectorized-baseline proxy).
// ====================================================================

class BaseWfaEngine final : public WfaEngine
{
  public:
    explicit BaseWfaEngine(isa::VectorUnit &vpu) : bu_(vpu.pipeline()) {}

    void
    extend(Wave &wave, Dir dir) override
    {
        const auto m = static_cast<std::int64_t>(p_.size());
        const auto n = static_cast<std::int64_t>(t_.size());
        const auto mlast = p_.size() - 1;
        const auto nlast = t_.size() - 1;
        for (int k = wave.lo(); k <= wave.hi(); ++k) {
            std::int32_t j = bu_.loadInt(kSiteExtOff, wave.ptr(k));
            if (j == kOffNone) {
                bu_.branch();
                continue;
            }
            std::int64_t i = static_cast<std::int64_t>(j) - k;
            bu_.alu(); // i = j - k
            while (i < m && j < n) {
                const std::size_t ri =
                    dir == Dir::Fwd ? static_cast<std::size_t>(i)
                                    : mlast - static_cast<std::size_t>(i);
                const std::size_t rj =
                    dir == Dir::Fwd ? static_cast<std::size_t>(j)
                                    : nlast - static_cast<std::size_t>(j);
                const sim::MemOp chLoads[] = {
                    {sim::OpClass::ScalarLoad, kSiteExtPat,
                     addrOf(&p_[ri]), 1},
                    {sim::OpClass::ScalarLoad, kSiteExtTxt,
                     addrOf(&t_[rj]), 1},
                };
                bu_.loads(chLoads);
                const char pc = p_[ri];
                const char tc = t_[rj];
                bu_.alu(); // compare
                if (pc != tc)
                    break;
                bu_.alu(2); // i++, j++ and the bounds recompute the
                            // auto-vectorized loop carries
                bu_.branch(); // residue match
                bu_.branch(); // bounds
                ++i;
                ++j;
            }
            bu_.branchMiss(); // data-dependent run exit
            wave.set(k, static_cast<std::int32_t>(j));
            bu_.storeInt(kSiteExtSto, wave.ptr(k),
                         static_cast<std::int32_t>(j));
        }
    }

    void
    nextWave(const Wave &prev, Wave &next) override
    {
        for (int k = next.lo(); k <= next.hi(); ++k) {
            const sim::MemOp waveLoads[] = {
                {sim::OpClass::ScalarLoad, kSiteNwIns,
                 addrOf(prev.ptr(k - 1)), 4},
                {sim::OpClass::ScalarLoad, kSiteNwSub,
                 addrOf(prev.ptr(k)), 4},
                {sim::OpClass::ScalarLoad, kSiteNwDel,
                 addrOf(prev.ptr(k + 1)), 4},
            };
            bu_.loads(waveLoads);
            bu_.alu(3); // two adds + two-level max fold
            bu_.alu();  // clamp
            const std::int32_t value = nextValue(prev, k);
            next.set(k, value);
            bu_.storeInt(kSiteNwSto, next.ptr(k), value);
        }
    }

    void
    combineWave(std::span<const WaveTerm> terms, Wave &dst) override
    {
        for (int k = dst.lo(); k <= dst.hi(); ++k) {
            for (const WaveTerm &term : terms) {
                if (!term.src)
                    continue;
                const int sk = k + term.kShift;
                if (sk < term.src->lo() - 1 ||
                    sk > term.src->hi() + 1)
                    continue;
                bu_.loadInt(kSiteNwSub, term.src->ptr(sk));
                bu_.alu();
            }
            bu_.alu(2); // fold + clamp
            const std::int32_t value = combineValue(terms, k);
            dst.set(k, value);
            bu_.storeInt(kSiteNwSto, dst.ptr(k), value);
        }
    }

    void
    chargeTracebackHop(const std::int32_t *ins, const std::int32_t *sub,
                       const std::int32_t *del) override
    {
        const sim::MemOp hopLoads[] = {
            {sim::OpClass::ScalarLoad, kSiteTbHop, addrOf(ins), 4},
            {sim::OpClass::ScalarLoad, kSiteTbHop, addrOf(sub), 4},
            {sim::OpClass::ScalarLoad, kSiteTbHop, addrOf(del), 4},
        };
        bu_.loads(hopLoads);
        bu_.alu(3);
        bu_.branch();
    }

    void
    chargeTracebackRun(std::size_t matchColumns) override
    {
        // Emitting an RLE match run is O(1) plus a copy the compiler
        // turns into word stores.
        bu_.alu(1 + static_cast<unsigned>(matchColumns / 8));
    }

    void
    chargeOverlapCheck(const Wave &f, const Wave &r, int lo,
                       int hi) override
    {
        const int nm = static_cast<int>(t_.size()) -
                       static_cast<int>(p_.size());
        for (int k = lo; k <= hi; ++k) {
            const sim::MemOp ovLoads[] = {
                {sim::OpClass::ScalarLoad, kSiteOvF, addrOf(f.ptr(k)), 4},
                {sim::OpClass::ScalarLoad, kSiteOvR,
                 addrOf(r.ptr(nm - k)), 4},
            };
            bu_.loads(ovLoads);
            bu_.alu(2);
            bu_.branch();
        }
    }

  private:
    isa::BaseUnit bu_;
};

// ====================================================================
// Shared vectorized kernels (nextWave / traceback / overlap) used by
// the Vec, Qz, and QzC engines — QUETZAL leaves the unit-stride wave
// update on the regular vector datapath (Section III-C).
// ====================================================================

class VecKernels
{
  public:
    explicit VecKernels(isa::VectorUnit &vpu) : vpu_(vpu) {}

    void
    nextWave(const WfaEngine &eng, const Wave &prev, Wave &next,
             std::size_t m, std::size_t n)
    {
        constexpr unsigned L = isa::kLanes32;
        const VReg vm = vpu_.dup32(static_cast<std::int32_t>(m));
        const VReg vn = vpu_.dup32(static_cast<std::int32_t>(n));
        const VReg vnone = vpu_.dup32(kOffNone);
        const VReg vzero = vpu_.dup32(0);
        (void)eng;
        for (int k0 = next.lo(); k0 <= next.hi();
             k0 += static_cast<int>(L)) {
            const unsigned cnt = std::min<long>(
                L, static_cast<long>(next.hi()) - k0 + 1);
            const unsigned bytes = cnt * 4;
            // One charge run for the three wave loads, each register
            // rebuilt from its own tag — byte-identical to per-op
            // load() calls.
            const sim::MemOp waveLoads[] = {
                {sim::OpClass::VecLoad, kSiteNwIns,
                 addrOf(prev.ptr(k0 - 1)), bytes},
                {sim::OpClass::VecLoad, kSiteNwSub,
                 addrOf(prev.ptr(k0)), bytes},
                {sim::OpClass::VecLoad, kSiteNwDel,
                 addrOf(prev.ptr(k0 + 1)), bytes},
            };
            sim::Tag wt[3];
            vpu_.chargeMemRun(waveLoads, sim::Tag{}, wt);
            using VU = isa::VectorUnit;
            const VReg a = VU::lanes(prev.ptr(k0 - 1), bytes, wt[0]);
            const VReg b = VU::lanes(prev.ptr(k0), bytes, wt[1]);
            const VReg c = VU::lanes(prev.ptr(k0 + 1), bytes, wt[2]);
            VReg v = vpu_.max32(
                vpu_.max32(vpu_.add32i(a, 1), vpu_.add32i(b, 1)), c);
            const VReg kv = vpu_.index32(k0, 1);
            const VReg jmax = vpu_.min32(vn, vpu_.add32(kv, vm));
            const Pred lanes = vpu_.whilelt(0, cnt, L);
            const Pred bad =
                vpu_.pOr(vpu_.cmpgt32(v, jmax, lanes, L),
                         vpu_.cmplt32(v, vzero, lanes, L));
            v = vpu_.sel32(bad, vnone, v);
            vpu_.store(kSiteNwSto, next.ptr(k0), v, bytes);
        }
    }

    void
    combineWave(const WfaEngine &eng,
                std::span<const WfaEngine::WaveTerm> terms, Wave &dst,
                std::size_t m, std::size_t n)
    {
        constexpr unsigned L = isa::kLanes32;
        const VReg vm = vpu_.dup32(static_cast<std::int32_t>(m));
        const VReg vn = vpu_.dup32(static_cast<std::int32_t>(n));
        const VReg vnone = vpu_.dup32(kOffNone);
        const VReg vzero = vpu_.dup32(0);
        for (int k0 = dst.lo(); k0 <= dst.hi();
             k0 += static_cast<int>(L)) {
            const unsigned cnt = std::min<long>(
                L, static_cast<long>(dst.hi()) - k0 + 1);
            const unsigned bytes = cnt * 4;
            VReg acc = vnone;
            for (const auto &term : terms) {
                if (!term.src)
                    continue;
                const int sk = k0 + term.kShift;
                // Only rows reachable within the source padding are
                // vector-loaded; the rest contribute nothing.
                if (sk < term.src->lo() - Wave::kPad + 2 ||
                    sk + static_cast<int>(cnt) >
                        term.src->hi() + Wave::kPad - 2)
                    continue;
                const VReg v =
                    vpu_.load(kSiteNwSub, term.src->ptr(sk), bytes);
                acc = vpu_.max32(acc, vpu_.add32i(v, term.addend));
            }
            const VReg kv = vpu_.index32(k0, 1);
            const VReg jmax = vpu_.min32(vn, vpu_.add32(kv, vm));
            const Pred lanes = vpu_.whilelt(0, cnt, L);
            const Pred bad =
                vpu_.pOr(vpu_.cmpgt32(acc, jmax, lanes, L),
                         vpu_.cmplt32(acc, vzero, lanes, L));
            VReg out = vpu_.sel32(bad, vnone, acc);
            // Authoritative functional values (identical to the
            // vector math wherever the source rows were loadable).
            for (unsigned l = 0; l < cnt; ++l) {
                const std::int32_t value =
                    eng.combineValue(terms, k0 + static_cast<int>(l));
                out.setI32(l, value);
                dst.set(k0 + static_cast<int>(l), value);
            }
            vpu_.store(kSiteNwSto, dst.ptr(k0), out, bytes);
        }
    }

    void
    tracebackHop(const std::int32_t *ins, const std::int32_t *sub,
                 const std::int32_t *del)
    {
        vpu_.scalarLoad(kSiteTbHop, ins, 4);
        vpu_.scalarLoad(kSiteTbHop, sub, 4);
        vpu_.scalarLoad(kSiteTbHop, del, 4);
        vpu_.scalarOps(3);
    }

    void
    tracebackRun(std::size_t matchColumns)
    {
        vpu_.scalarOps(1 + static_cast<unsigned>(matchColumns / 8));
    }

    void
    overlapCheck(const Wave &f, const Wave &r, int lo, int hi, int nm)
    {
        constexpr unsigned L = isa::kLanes32;
        for (int k0 = lo; k0 <= hi; k0 += static_cast<int>(L)) {
            const unsigned cnt =
                std::min<long>(L, static_cast<long>(hi) - k0 + 1);
            const unsigned bytes = cnt * 4;
            // Reverse wave is read back-to-front: contiguous load at
            // the mirrored position plus a vector reverse (SVE rev).
            const int rk = nm - (k0 + static_cast<int>(cnt) - 1);
            const sim::MemOp ovLoads[] = {
                {sim::OpClass::VecLoad, kSiteOvF, addrOf(f.ptr(k0)),
                 bytes},
                {sim::OpClass::VecLoad, kSiteOvR, addrOf(r.ptr(rk)),
                 bytes},
            };
            sim::Tag ot[2];
            vpu_.chargeMemRun(ovLoads, sim::Tag{}, ot);
            using VU = isa::VectorUnit;
            const VReg fv = VU::lanes(f.ptr(k0), bytes, ot[0]);
            const VReg rv = VU::lanes(r.ptr(rk), bytes, ot[1]);
            vpu_.scalarOps(1); // rev
            const VReg sum = vpu_.add32(fv, rv);
            const Pred lanes = vpu_.whilelt(0, cnt, L);
            const VReg vn =
                vpu_.dup32(static_cast<std::int32_t>(0));
            (void)vn;
            vpu_.cmpgt32(sum, vpu_.dup32(0), lanes, L);
            vpu_.scalarOps(1); // fold/branch
        }
    }

    isa::VectorUnit &vpu() { return vpu_; }

  private:
    isa::VectorUnit &vpu_;
};

// ====================================================================
// Vec engine: the in-house SVE implementation (Fig. 2a), extend via
// scatter/gather through the cache hierarchy.
// ====================================================================

class VecWfaEngine final : public WfaEngine
{
  public:
    explicit VecWfaEngine(isa::VectorUnit &vpu) : k_(vpu) {}

    void
    extend(Wave &wave, Dir dir) override
    {
        // The paper's in-house VEC extension (Fig. 2a): each lane owns
        // one diagonal; every step gathers ONE pattern and ONE text
        // residue per lane through the cache hierarchy, compares, and
        // deactivates mismatching lanes.
        isa::VectorUnit &vpu = k_.vpu();
        constexpr unsigned L = isa::kLanes32;
        const auto m = static_cast<std::int32_t>(p_.size());
        const auto n = static_cast<std::int32_t>(t_.size());
        const VReg vm = vpu.dup32(m);
        const VReg vn = vpu.dup32(n);
        const VReg vm1 = vpu.dup32(m - 1);
        const VReg vn1 = vpu.dup32(n - 1);
        const VReg vnone = vpu.dup32(kOffNone);

        for (int k0 = wave.lo(); k0 <= wave.hi();
             k0 += static_cast<int>(L)) {
            const unsigned cnt = std::min<long>(
                L, static_cast<long>(wave.hi()) - k0 + 1);
            const unsigned bytes = cnt * 4;
            VReg jv = vpu.load(kSiteExtOff, wave.ptr(k0), bytes);
            const VReg kv = vpu.index32(k0, 1);
            const Pred lanes = vpu.whilelt(0, cnt, L);
            Pred act = vpu.cmpne32(jv, vnone, lanes, L);
            VReg iv = vpu.sub32(jv, kv);

            for (;;) {
                const Pred bi = vpu.cmplt32(iv, vm, act, L);
                const Pred bj = vpu.cmplt32(jv, vn, act, L);
                act = vpu.pAnd(act, vpu.pAnd(bi, bj));
                if (!vpu.anyActive(act))
                    break;
                const VReg pidx =
                    dir == Dir::Fwd ? iv : vpu.sub32(vm1, iv);
                const VReg tidx =
                    dir == Dir::Fwd ? jv : vpu.sub32(vn1, jv);
                const VReg pc =
                    vpu.gather8(kSiteExtPat, patData(), pidx, act, L);
                const VReg tc =
                    vpu.gather8(kSiteExtTxt, txtData(), tidx, act, L);
                const Pred eq = vpu.cmpeq32(pc, tc, act, L);
                iv = vpu.addUnderPred32(iv, 1, eq);
                jv = vpu.addUnderPred32(jv, 1, eq);
                act = eq;
            }
            vpu.store(kSiteExtSto, wave.ptr(k0), jv, bytes);
        }
    }

    void
    nextWave(const Wave &prev, Wave &next) override
    {
        k_.nextWave(*this, prev, next, p_.size(), t_.size());
    }

    void
    combineWave(std::span<const WaveTerm> terms, Wave &dst) override
    {
        k_.combineWave(*this, terms, dst, p_.size(), t_.size());
    }

    void
    chargeTracebackHop(const std::int32_t *ins, const std::int32_t *sub,
                       const std::int32_t *del) override
    {
        k_.tracebackHop(ins, sub, del);
    }

    void
    chargeTracebackRun(std::size_t matchColumns) override
    {
        k_.tracebackRun(matchColumns);
    }

    void
    chargeOverlapCheck(const Wave &f, const Wave &r, int lo,
                       int hi) override
    {
        k_.overlapCheck(f, r, lo, hi,
                        static_cast<int>(t_.size()) -
                            static_cast<int>(p_.size()));
    }

  private:
    VecKernels k_;
};

// ====================================================================
// Qz / QzC engines: extend via QBUFFERs (Fig. 6a). Qz compares one
// element per lane with qzmhm<cmpeq>; QzC counts whole 64-bit windows
// with qzmhm<qzcount>.
// ====================================================================

class QzWfaEngineBase : public WfaEngine
{
  public:
    QzWfaEngineBase(isa::VectorUnit &vpu, accel::QzUnit &qz)
        : k_(vpu), qz_(qz)
    {}

    void
    nextWave(const Wave &prev, Wave &next) override
    {
        k_.nextWave(*this, prev, next, p_.size(), t_.size());
    }

    void
    combineWave(std::span<const WaveTerm> terms, Wave &dst) override
    {
        k_.combineWave(*this, terms, dst, p_.size(), t_.size());
    }

    void
    chargeTracebackHop(const std::int32_t *ins, const std::int32_t *sub,
                       const std::int32_t *del) override
    {
        k_.tracebackHop(ins, sub, del);
    }

    void
    chargeTracebackRun(std::size_t matchColumns) override
    {
        k_.tracebackRun(matchColumns);
    }

    void
    chargeOverlapCheck(const Wave &f, const Wave &r, int lo,
                       int hi) override
    {
        k_.overlapCheck(f, r, lo, hi,
                        static_cast<int>(t_.size()) -
                            static_cast<int>(p_.size()));
    }

  protected:
    void
    onBegin(ElementSize esize) override
    {
        esize_ = esize;
        qz_.qzconf(p_.size(), t_.size(), esize);
        if (esize == ElementSize::Bits2) {
            qz_.stageSequence2bit(accel::QzSel::Buf0, p_);
            qz_.stageSequence2bit(accel::QzSel::Buf1, t_);
        } else {
            qz_.stageSequence8bit(accel::QzSel::Buf0, p_);
            qz_.stageSequence8bit(accel::QzSel::Buf1, t_);
        }
    }

    VecKernels k_;
    accel::QzUnit &qz_;
    ElementSize esize_ = ElementSize::Bits2;
};

class QzWfaEngine final : public QzWfaEngineBase
{
  public:
    using QzWfaEngineBase::QzWfaEngineBase;

    void
    extend(Wave &wave, Dir dir) override
    {
        // QBUFFERs without the count ALU: qzmhm<xor> fetches whole
        // 64-bit windows (32 bases at 2-bit encoding) in 2 cycles;
        // the regular vector datapath counts the matching prefix with
        // the rbit+clz idiom (Fig. 6a minus the count hardware).
        isa::VectorUnit &vpu = k_.vpu();
        constexpr unsigned L = isa::kLanes32;
        const auto m = static_cast<std::int32_t>(p_.size());
        const auto n = static_cast<std::int32_t>(t_.size());
        const auto window = static_cast<std::int32_t>(
            accel::CountAlu::elementsPerSegment(esize_));
        const unsigned shift = accel::CountAlu::shiftFor(esize_);
        const VReg vm = vpu.dup32(m);
        const VReg vn = vpu.dup32(n);
        const VReg vm1 = vpu.dup32(m - 1);
        const VReg vn1 = vpu.dup32(n - 1);
        const VReg vzero = vpu.dup32(0);
        const VReg vnone = vpu.dup32(kOffNone);
        const VReg vwin = vpu.dup32(window);
        const accel::QzOpn opn = dir == Dir::Fwd
                                     ? accel::QzOpn::XorWin
                                     : accel::QzOpn::XorWinRev;

        for (int k0 = wave.lo(); k0 <= wave.hi();
             k0 += static_cast<int>(L)) {
            const unsigned cnt = std::min<long>(
                L, static_cast<long>(wave.hi()) - k0 + 1);
            const unsigned bytes = cnt * 4;
            VReg jv = vpu.load(kSiteExtOff, wave.ptr(k0), bytes);
            const VReg kv = vpu.index32(k0, 1);
            const Pred lanes = vpu.whilelt(0, cnt, L);
            Pred act = vpu.cmpne32(jv, vnone, lanes, L);
            const VReg iv = vpu.sub32(jv, kv);
            VReg rem = vpu.min32(vpu.sub32(vm, iv), vpu.sub32(vn, jv));
            act = vpu.pAnd(act, vpu.cmpgt32(rem, vzero, act, L));
            VReg ip = dir == Dir::Fwd ? iv : vpu.sub32(vm1, iv);
            VReg it = dir == Dir::Fwd ? jv : vpu.sub32(vn1, jv);

            while (vpu.anyActive(act)) {
                const Pred pLo = vpu.punpkLo(act);
                const Pred pHi = vpu.punpkHi(act);
                const VReg xLo = qz_.qzmhm(opn, vpu.widenLo32to64(ip),
                                           vpu.widenLo32to64(it), pLo,
                                           isa::kLanes64);
                const VReg xHi = qz_.qzmhm(opn, vpu.widenHi32to64(ip),
                                           vpu.widenHi32to64(it), pHi,
                                           isa::kLanes64);
                // Count matched elements from each xor window, then
                // pack the two halves back into 16 x 32-bit counts.
                auto count64 = [&](const VReg &x) {
                    const VReg tz = dir == Dir::Fwd ? vpu.ctz64(x)
                                                    : vpu.clz64(x);
                    return vpu.shr64i(tz, shift);
                };
                const VReg counts =
                    vpu.pack64to32(count64(xLo), count64(xHi));
                const VReg adv = vpu.min32(counts, rem);
                const VReg sadv = dir == Dir::Fwd
                                      ? adv
                                      : vpu.sub32(vzero, adv);
                ip = vpu.addvUnderPred32(ip, sadv, act);
                it = vpu.addvUnderPred32(it, sadv, act);
                rem = vpu.addvUnderPred32(rem, vpu.sub32(vzero, adv),
                                          act);
                const Pred full = vpu.cmpeq32(counts, vwin, act, L);
                const Pred more = vpu.cmpgt32(rem, vzero, act, L);
                act = vpu.pAnd(full, more);
            }
            const VReg jOut =
                dir == Dir::Fwd ? it : vpu.sub32(vn1, it);
            vpu.store(kSiteExtSto, wave.ptr(k0), jOut, bytes);
        }
    }
};

class QzCWfaEngine final : public QzWfaEngineBase
{
  public:
    using QzWfaEngineBase::QzWfaEngineBase;

    void
    extend(Wave &wave, Dir dir) override
    {
        // The full Fig. 6a flow: qzmhm<qzcount> reads both QBUFFER
        // windows and counts consecutive matches in one instruction,
        // leaving only the minimal advance/continue sequence — the
        // instruction-count reduction the paper claims.
        isa::VectorUnit &vpu = k_.vpu();
        constexpr unsigned L = isa::kLanes32;
        const auto m = static_cast<std::int32_t>(p_.size());
        const auto n = static_cast<std::int32_t>(t_.size());
        const auto window = static_cast<std::int32_t>(
            accel::CountAlu::elementsPerSegment(esize_));
        const VReg vm = vpu.dup32(m);
        const VReg vn = vpu.dup32(n);
        const VReg vm1 = vpu.dup32(m - 1);
        const VReg vn1 = vpu.dup32(n - 1);
        const VReg vzero = vpu.dup32(0);
        const VReg vnone = vpu.dup32(kOffNone);
        const VReg vwin = vpu.dup32(window);
        const accel::QzOpn opn = dir == Dir::Fwd
                                     ? accel::QzOpn::Count
                                     : accel::QzOpn::CountRev;

        for (int k0 = wave.lo(); k0 <= wave.hi();
             k0 += static_cast<int>(L)) {
            const unsigned cnt = std::min<long>(
                L, static_cast<long>(wave.hi()) - k0 + 1);
            const unsigned bytes = cnt * 4;
            VReg jv = vpu.load(kSiteExtOff, wave.ptr(k0), bytes);
            const VReg kv = vpu.index32(k0, 1);
            const Pred lanes = vpu.whilelt(0, cnt, L);
            Pred act = vpu.cmpne32(jv, vnone, lanes, L);
            const VReg iv = vpu.sub32(jv, kv);
            VReg rem = vpu.min32(vpu.sub32(vm, iv), vpu.sub32(vn, jv));
            act = vpu.pAnd(act, vpu.cmpgt32(rem, vzero, act, L));
            VReg ip = dir == Dir::Fwd ? iv : vpu.sub32(vm1, iv);
            VReg it = dir == Dir::Fwd ? jv : vpu.sub32(vn1, jv);

            while (vpu.anyActive(act)) {
                const Pred pLo = vpu.punpkLo(act);
                const Pred pHi = vpu.punpkHi(act);
                const VReg cLo = qz_.qzmhm(opn, vpu.widenLo32to64(ip),
                                           vpu.widenLo32to64(it), pLo,
                                           isa::kLanes64);
                const VReg cHi = qz_.qzmhm(opn, vpu.widenHi32to64(ip),
                                           vpu.widenHi32to64(it), pHi,
                                           isa::kLanes64);
                const VReg counts = vpu.pack64to32(cLo, cHi);
                const VReg adv = vpu.min32(counts, rem);
                const VReg sadv = dir == Dir::Fwd
                                      ? adv
                                      : vpu.sub32(vzero, adv);
                ip = vpu.addvUnderPred32(ip, sadv, act);
                it = vpu.addvUnderPred32(it, sadv, act);
                rem = vpu.addvUnderPred32(rem, vpu.sub32(vzero, adv),
                                          act);
                const Pred full = vpu.cmpeq32(counts, vwin, act, L);
                const Pred more = vpu.cmpgt32(rem, vzero, act, L);
                act = vpu.pAnd(full, more);
            }
            const VReg jOut =
                dir == Dir::Fwd ? it : vpu.sub32(vn1, it);
            vpu.store(kSiteExtSto, wave.ptr(k0), jOut, bytes);
        }
    }
};

} // namespace

std::unique_ptr<WfaEngine>
makeWfaEngine(Variant variant, isa::VectorUnit *vpu, accel::QzUnit *qz)
{
    switch (variant) {
      case Variant::Ref:
        return std::make_unique<RefWfaEngine>();
      case Variant::Base:
        panic_if_not(vpu != nullptr, "Base engine needs a VectorUnit");
        return std::make_unique<BaseWfaEngine>(*vpu);
      case Variant::Vec:
        panic_if_not(vpu != nullptr, "Vec engine needs a VectorUnit");
        return std::make_unique<VecWfaEngine>(*vpu);
      case Variant::Qz:
        panic_if_not(vpu != nullptr && qz != nullptr,
                     "Qz engine needs a VectorUnit and a QzUnit");
        return std::make_unique<QzWfaEngine>(*vpu, *qz);
      case Variant::QzC:
        panic_if_not(vpu != nullptr && qz != nullptr,
                     "QzC engine needs a VectorUnit and a QzUnit");
        return std::make_unique<QzCWfaEngine>(*vpu, *qz);
    }
    panic("unknown Variant {}", static_cast<int>(variant));
}

} // namespace quetzal::algos
