#include "algos/batch.hpp"

#include <utility>

namespace quetzal::algos {

std::vector<RunResult>
BatchRunner::run()
{
    std::vector<BatchCell> cells = std::move(cells_);
    cells_.clear();

    std::vector<RunResult> results(cells.size());
    // Submission order in, submission order out: worker i writes only
    // slot i, so completion order never reorders results. Each
    // runAlgorithm() call owns a fresh simulated core (see runner.cpp)
    // and reads a shared immutable dataset — no cross-cell state.
    parallelFor(threads_, cells.size(), [&](std::size_t i) {
        results[i] =
            runAlgorithm(cells[i].kind, *cells[i].dataset,
                         cells[i].options);
    });
    return results;
}

std::vector<RunResult>
runBatch(std::vector<BatchCell> cells, unsigned threads)
{
    BatchRunner runner(threads);
    for (auto &cell : cells)
        runner.add(std::move(cell));
    return runner.run();
}

} // namespace quetzal::algos
