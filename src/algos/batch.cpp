#include "algos/batch.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>

#include "algos/report.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"

namespace quetzal::algos {

std::optional<ShardSpec>
parseShardSpec(std::string_view spec)
{
    if (spec.empty())
        return std::nullopt;
    const std::size_t slash = spec.find('/');
    fatal_if(slash == std::string_view::npos,
             "shard spec '{}' is not of the form K/N", spec);
    const std::string indexField(spec.substr(0, slash));
    const std::string countField(spec.substr(slash + 1));

    char *end = nullptr;
    const unsigned long long index =
        std::strtoull(indexField.c_str(), &end, 10);
    fatal_if(indexField.empty() || *end != '\0',
             "shard index '{}' is not a positive integer", indexField);
    const unsigned long long count =
        std::strtoull(countField.c_str(), &end, 10);
    fatal_if(countField.empty() || *end != '\0',
             "shard count '{}' is not a positive integer", countField);
    fatal_if(count == 0, "shard count must be at least 1");
    fatal_if(index == 0 || index > count,
             "shard index {} out of range 1..{}", index, count);

    ShardSpec shard;
    shard.index = static_cast<unsigned>(index);
    shard.count = static_cast<unsigned>(count);
    return shard;
}

std::optional<ShardSpec>
shardFromEnv()
{
    const char *env = std::getenv("QZ_BENCH_SHARD");
    if (!env || !*env)
        return std::nullopt;
    return parseShardSpec(env);
}

std::string
shardName(const ShardSpec &shard)
{
    return qformat("{}/{}", shard.index, shard.count);
}

bool
hostPerfFromEnv()
{
    const char *env = std::getenv("QZ_BENCH_HOSTPERF");
    return env && *env && std::string_view(env) != "0";
}

std::size_t
truncateTornCheckpointTail(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return 0; // first run: the file does not exist yet
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    if (content.empty() || content.back() == '\n')
        return 0; // clean tail: every line is complete
    const std::size_t lastNewline = content.find_last_of('\n');
    const std::size_t keep =
        lastNewline == std::string::npos ? 0 : lastNewline + 1;
    const std::size_t dropped = content.size() - keep;
    std::error_code ec;
    std::filesystem::resize_file(path, keep, ec);
    if (ec) {
        warn("checkpoint '{}': cannot truncate {} torn trailing "
             "byte(s) ({}); resume will skip the partial line but a "
             "subsequent append would corrupt it further",
             path, dropped, ec.message());
        return 0;
    }
    warn("checkpoint '{}': truncated {} byte(s) of torn trailing "
         "line (writer killed mid-record); the affected cell will "
         "re-simulate",
         path, dropped);
    return dropped;
}

namespace {

/**
 * Load a checkpoint file into hash -> RunResult. Each line is one
 * completed cell ({"v":1,"hash":...,"key":...,"result":{...}}).
 * Unparseable lines — typically one partial trailing line left by a
 * killed sweep — are counted and skipped, never fatal: the worst case
 * is re-simulating a cell that was almost recorded.
 */
std::unordered_map<std::string, RunResult>
loadCheckpoint(const std::string &path)
{
    std::unordered_map<std::string, RunResult> cache;
    std::ifstream in(path);
    if (!in)
        return cache; // first run: the file does not exist yet
    std::size_t skipped = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto json = parseJson(line);
        if (!json || !json->isObject()) {
            ++skipped;
            continue;
        }
        const std::string hash = json->getString("hash");
        const JsonValue *result = json->find("result");
        if (hash.empty() || !result) {
            ++skipped;
            continue;
        }
        auto parsed = runResultFromJson(*result);
        if (!parsed) {
            ++skipped;
            continue;
        }
        cache[hash] = std::move(*parsed);
    }
    if (skipped > 0)
        warn("checkpoint '{}': skipped {} unparseable line(s); the "
             "affected cells will re-simulate",
             path, skipped);
    return cache;
}

/** One completed cell as a checkpoint line (no trailing newline). */
std::string
checkpointLine(const std::string &hash, const std::string &key,
               const RunResult &result)
{
    JsonWriter json;
    json.beginObject()
        .field("v", std::uint64_t{1})
        .field("hash", hash)
        .field("key", key)
        .rawField("result", toJson(result))
        .endObject();
    return json.str();
}

} // namespace

BatchOutcome
BatchRunner::run()
{
    std::vector<BatchCell> cells = std::move(cells_);
    cells_.clear();

    BatchOutcome out;
    out.results.resize(cells.size());
    out.shard = policy_.shard;

    // Deterministic round-robin partitioning by submission index.
    // A cell this shard does not own keeps its identity with zeroed
    // metrics — tables render a labeled hole, and the shard's JSON
    // report serializes only the owned slots (ownedCells).
    std::vector<char> owned(cells.size(), 1);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (policy_.shard && !policy_.shard->owns(i)) {
            owned[i] = 0;
            RunResult &slot = out.results[i];
            slot.algo = cells[i].workload->name();
            slot.variant =
                std::string(variantName(cells[i].options.variant));
            slot.dataset = cells[i].source->info().name;
        } else {
            out.ownedCells.push_back(i);
        }
    }

    // Canonical identities up front: keys label failure records, and
    // hashes (checkpoint mode only — they digest dataset contents)
    // index the resume cache. Both are shard-invariant: sharding
    // changes which process runs a cell, never its identity.
    std::vector<std::string> keys(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        keys[i] = cellKey(cells[i].workload->name(), *cells[i].source,
                          cells[i].options);

    std::vector<char> done(cells.size(), 0);
    std::vector<std::string> hashes;
    std::ofstream ckptOut;
    if (!policy_.checkpointPath.empty()) {
        hashes.resize(cells.size());
        for (std::size_t i = 0; i < cells.size(); ++i)
            hashes[i] = cellHash(cells[i].workload->name(),
                                 *cells[i].source, cells[i].options);
        // A writer killed mid-record leaves a torn trailing line.
        // Drop it before opening for append: appending after a line
        // with no '\n' would concatenate the new record onto the
        // partial one and poison both on the next resume.
        truncateTornCheckpointTail(policy_.checkpointPath);
        const auto cache = loadCheckpoint(policy_.checkpointPath);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (!owned[i])
                continue; // another shard's cell; leave it alone
            const auto it = cache.find(hashes[i]);
            if (it == cache.end())
                continue;
            out.results[i] = it->second;
            done[i] = 1;
            ++out.resumedCells;
        }
        ckptOut.open(policy_.checkpointPath, std::ios::app);
        if (!ckptOut)
            warn("cannot open checkpoint '{}' for appending; this "
                 "sweep will not be resumable",
                 policy_.checkpointPath);
    }

    // One mutex covers every shared record: the failure list, the
    // checkpoint stream, the retry counter, and the injection budget.
    // Cells are coarse (whole simulations), so contention is noise.
    // Worker-process-level injection kinds (crash/hang) only fire
    // inside qz-serve workers; the in-process engine arms Throw only.
    std::mutex recordMutex;
    const bool injectHere =
        policy_.inject && policy_.inject->action == FaultAction::Throw;
    unsigned injectionsLeft = injectHere ? policy_.inject->times : 0;
    std::uint64_t retries = 0;

    parallelFor(threads_, cells.size(), [&](std::size_t i) {
        if (!owned[i] || done[i])
            return; // another shard's cell, or resumed from checkpoint
        const BatchCell &cell = cells[i];
        for (unsigned attempt = 1;; ++attempt) {
            try {
                if (injectHere && policy_.inject->cell == i) {
                    bool fire = false;
                    {
                        std::lock_guard<std::mutex> lock(recordMutex);
                        if (injectionsLeft > 0) {
                            --injectionsLeft;
                            fire = true;
                        }
                    }
                    if (fire)
                        throwInjectedFault(*policy_.inject);
                }
                // Host wall-clock is measured right around the
                // simulation and only when asked for: the timestamp
                // never influences control flow, so simulated metrics
                // are identical with it on or off.
                const auto started =
                    hostPerf_ ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
                // Each attempt streams from a fresh cursor over the
                // shared (const, thread-safe) source.
                const auto stream = cell.source->fork();
                RunResult result =
                    cell.workload->runStream(*stream, cell.options);
                if (hostPerf_)
                    result.hostNanos = static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - started)
                            .count());
                {
                    std::lock_guard<std::mutex> lock(recordMutex);
                    retries += attempt - 1;
                    if (ckptOut.is_open())
                        ckptOut << checkpointLine(hashes[i], keys[i],
                                                  result)
                                << std::endl; // flush: crash safety
                }
                out.results[i] = std::move(result);
                return;
            } catch (...) {
                const std::exception_ptr error =
                    std::current_exception();
                const FailureKind kind = classifyException(error);
                if (kind == FailureKind::Transient &&
                    attempt < policy_.retry.maxAttempts) {
                    const unsigned delayMs =
                        policy_.retry.backoffMs(attempt);
                    if (delayMs > 0)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(delayMs));
                    continue;
                }
                if (!policy_.isolateFailures)
                    throw; // legacy fail-fast: pool rethrows first

                CellFailure failure;
                failure.cell = i;
                failure.key = keys[i];
                failure.kind = kind;
                failure.message = exceptionMessage(error);
                failure.attempts = attempt;
                // The slot keeps its identity so tables and JSON can
                // label the hole; metrics stay zeroed.
                RunResult &slot = out.results[i];
                slot.algo = cell.workload->name();
                slot.variant =
                    std::string(variantName(cell.options.variant));
                slot.dataset = cell.source->info().name;
                slot.pairs = 0;
                {
                    std::lock_guard<std::mutex> lock(recordMutex);
                    retries += attempt - 1;
                    out.failures.push_back(std::move(failure));
                }
                return;
            }
        }
    });

    // Workers append failures in completion order; submission order
    // is the deterministic one.
    std::sort(out.failures.begin(), out.failures.end(),
              [](const CellFailure &a, const CellFailure &b) {
                  return a.cell < b.cell;
              });
    out.retries = retries;
    return out;
}

BatchOutcome
runBatch(std::vector<BatchCell> cells, unsigned threads)
{
    BatchRunner runner(threads);
    for (auto &cell : cells)
        runner.add(std::move(cell));
    return runner.run();
}

} // namespace quetzal::algos
