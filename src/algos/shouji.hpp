/**
 * @file
 * Shouji pre-alignment filter (Alser et al. 2019) — the second
 * edit-distance-approximation algorithm the paper cites alongside
 * SneakySnake, included to demonstrate that new filters run on the
 * same QUETZAL hardware with only recompilation (the programmability
 * claim of Section II-D).
 *
 * Shouji builds a neighborhood map: one match bit-vector per diagonal
 * within +/-E of the main diagonal. A sliding 4-column window then
 * keeps, per window, the diagonal sub-segment with the most matches,
 * OR-ing it into the Shouji bit-vector. Zeros that survive mark
 * probable edits; the pair is rejected when they exceed the
 * threshold. Like SneakySnake it underestimates the edit distance,
 * so it never rejects a pair that would align within E edits.
 */
#ifndef QUETZAL_ALGOS_SHOUJI_HPP
#define QUETZAL_ALGOS_SHOUJI_HPP

#include <cstdint>
#include <string_view>

#include "algos/variant.hpp"
#include "isa/vectorunit.hpp"
#include "quetzal/qzunit.hpp"

namespace quetzal::algos {

/** Filter outcome. */
struct ShoujiResult
{
    bool accepted = false;
    std::int64_t zeroCount = 0; //!< surviving zeros (edit estimate)
};

/**
 * Run the Shouji filter.
 *
 * @param variant Ref / Base / Vec / QzC (Qz behaves as QzC: the
 *        window reads carry the whole cost either way).
 * @param editThreshold E; the neighborhood spans 2E+1 diagonals.
 */
ShoujiResult shouji(Variant variant, std::string_view pattern,
                    std::string_view text, std::int64_t editThreshold,
                    isa::VectorUnit *vpu = nullptr,
                    accel::QzUnit *qz = nullptr);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_SHOUJI_HPP
