/**
 * @file
 * Gap-affine Wavefront Alignment (WFA with the (x, o, e) penalty
 * model of Marco-Sola et al.) — the "configurable scoring functions"
 * requirement of the paper's Section II-D, built on the same
 * per-variant engines (and therefore the same QUETZAL acceleration)
 * as the edit-distance WFA.
 *
 * Three wavefront components track the furthest-reaching offsets per
 * penalty s: M (match/mismatch state), I (gap in the pattern), and
 * D (gap in the text):
 *
 *   I_s[k] = max(M_{s-o-e}[k-1], I_{s-e}[k-1]) + 1
 *   D_s[k] = max(M_{s-o-e}[k+1], D_{s-e}[k+1])
 *   M_s[k] = max(M_{s-x}[k] + 1, I_s[k], D_s[k]),  then extend
 */
#ifndef QUETZAL_ALGOS_WFA_AFFINE_HPP
#define QUETZAL_ALGOS_WFA_AFFINE_HPP

#include <cstdint>
#include <string_view>

#include "algos/wfa.hpp"

namespace quetzal::algos {

/** Gap-affine penalties (match costs 0). */
struct AffinePenalties
{
    std::int32_t mismatch = 4; //!< x
    std::int32_t gapOpen = 6;  //!< o: a length-L gap costs o + L*e
    std::int32_t gapExtend = 2; //!< e

    /** Unit penalties: gap-affine degenerates to edit distance. */
    static AffinePenalties
    edit()
    {
        return AffinePenalties{1, 0, 1};
    }
};

/** Result of a gap-affine alignment (score is the total penalty). */
struct AffineResult
{
    std::int64_t score = 0;
    Cigar cigar;
};

/**
 * Gap-affine WFA alignment with traceback.
 * Engine semantics match wfaAlign (Ref/Base/Vec/Qz/QzC).
 */
AffineResult affineWfaAlign(WfaEngine &engine, std::string_view pattern,
                            std::string_view text,
                            const AffinePenalties &penalties =
                                AffinePenalties{},
                            bool traceback = true,
                            genomics::ElementSize esize =
                                genomics::ElementSize::Bits2);

/** Penalty of @p cigar under @p penalties (for validation). */
std::int64_t affinePenaltyOf(const Cigar &cigar,
                             const AffinePenalties &penalties);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_WFA_AFFINE_HPP
