/**
 * @file
 * Windowed (tiled) alignment for ultra-long reads — the Section VI
 * software path for sequences beyond the QBUFFERs' 32.7 kbp direct
 * capacity (e.g. Oxford Nanopore reads up to 2 Mbp).
 *
 * The read is cut into QBUFFER-sized windows; each window is aligned
 * independently (so each staging fits the scratchpad) against a text
 * window whose start follows the indel drift accumulated by earlier
 * windows, and the per-window CIGARs concatenate into one transcript.
 * This trades a little optimality at the seams for bounded on-chip
 * state — the same trade the paper's cited windowing/tiling approaches
 * make.
 */
#ifndef QUETZAL_ALGOS_TILED_HPP
#define QUETZAL_ALGOS_TILED_HPP

#include <cstddef>

#include "algos/wfa.hpp"

namespace quetzal::algos {

/** Tiling knobs. */
struct TiledConfig
{
    /**
     * Pattern bases per window. Must fit a QBUFFER at the chosen
     * encoding (32768 elements at 2-bit; 8192 at 8-bit).
     */
    std::size_t windowBases = 30000;
};

/**
 * Align @p pattern to @p text window by window with the given engine.
 *
 * The result is always a valid alignment transcript; its score is an
 * upper bound on the optimal edit distance (equal when the optimal
 * path crosses every seam where the tiling cuts).
 */
AlignResult tiledAlign(WfaEngine &engine, std::string_view pattern,
                       std::string_view text,
                       const TiledConfig &config = TiledConfig{},
                       genomics::ElementSize esize =
                           genomics::ElementSize::Bits2);

/** Number of windows tiledAlign() will use for @p patternLength. */
std::size_t tiledWindowCount(std::size_t patternLength,
                             const TiledConfig &config);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_TILED_HPP
