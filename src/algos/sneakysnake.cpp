#include "algos/sneakysnake.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace quetzal::algos {

using genomics::ElementSize;
using isa::Pred;
using isa::VReg;

namespace {

enum Site : std::uint64_t
{
    kSitePat = 0x200, //!< pattern residue access
    kSiteTxt = 0x201, //!< text residue access
};

} // namespace

void
SsEngine::begin(std::string_view pattern, std::string_view text,
                ElementSize esize)
{
    fatal_if(pattern.empty() || text.empty(),
             "SneakySnake requires non-empty sequences");
    paddedP_.assign(kSeqPad, '\x01');
    paddedP_.append(pattern);
    paddedP_.append(kSeqPad, '\x01');
    paddedT_.assign(kSeqPad, '\x02');
    paddedT_.append(text);
    paddedT_.append(kSeqPad, '\x02');
    p_ = std::string_view(paddedP_).substr(kSeqPad, pattern.size());
    t_ = std::string_view(paddedT_).substr(kSeqPad, text.size());
    onBegin(esize);
}

std::int32_t
SsEngine::runLength(std::int64_t pi, std::int64_t ti) const
{
    const auto m = static_cast<std::int64_t>(p_.size());
    const auto n = static_cast<std::int64_t>(t_.size());
    std::int32_t run = 0;
    while (pi < m && ti >= 0 && ti < n &&
           p_[static_cast<std::size_t>(pi)] ==
               t_[static_cast<std::size_t>(ti)]) {
        ++run;
        ++pi;
        ++ti;
    }
    return run;
}

namespace {

// ====================================================================
// Reference kernel: functional only.
// ====================================================================

class RefSsEngine final : public SsEngine
{
  public:
    std::int32_t
    bestRun(std::int64_t pi, std::int64_t tiBase, int kLo, int kHi,
            int &bestK) override
    {
        std::int32_t best = 0;
        bestK = kLo;
        for (int k = kLo; k <= kHi; ++k) {
            const std::int32_t run = runLength(pi, tiBase + k);
            if (run > best) {
                best = run;
                bestK = k;
            }
        }
        return best;
    }
};

// ====================================================================
// Base kernel: timed scalar diagonal walks.
// ====================================================================

class BaseSsEngine final : public SsEngine
{
  public:
    explicit BaseSsEngine(isa::VectorUnit &vpu) : bu_(vpu.pipeline()) {}

    std::int32_t
    bestRun(std::int64_t pi, std::int64_t tiBase, int kLo, int kHi,
            int &bestK) override
    {
        const auto m = static_cast<std::int64_t>(p_.size());
        const auto n = static_cast<std::int64_t>(t_.size());
        std::int32_t best = 0;
        bestK = kLo;
        for (int k = kLo; k <= kHi; ++k) {
            std::int64_t i = pi;
            std::int64_t j = tiBase + k;
            std::int32_t run = 0;
            bu_.alu(2); // j = base + k; run = 0
            while (i < m && j >= 0 && j < n) {
                const char pc = static_cast<char>(bu_.loadChar(
                    kSitePat, &p_[static_cast<std::size_t>(i)]));
                const char tc = static_cast<char>(bu_.loadChar(
                    kSiteTxt, &t_[static_cast<std::size_t>(j)]));
                bu_.alu();
                if (pc != tc)
                    break;
                bu_.alu(2); // run++/i++/j++ plus bounds recompute
                bu_.branch(); // residue match
                bu_.branch(); // bounds
                ++run;
                ++i;
                ++j;
            }
            bu_.branchMiss();
            bu_.alu(); // best update
            if (run > best) {
                best = run;
                bestK = k;
            }
        }
        return best;
    }

  private:
    isa::BaseUnit bu_;
};

// ====================================================================
// Vec kernel: lanes are diagonals, residues come via scatter/gather
// (paper Fig. 2b).
// ====================================================================

class VecSsEngine final : public SsEngine
{
  public:
    explicit VecSsEngine(isa::VectorUnit &vpu) : vpu_(vpu) {}

    std::int32_t
    bestRun(std::int64_t pi, std::int64_t tiBase, int kLo, int kHi,
            int &bestK) override
    {
        constexpr unsigned L = isa::kLanes32;
        const auto m = static_cast<std::int32_t>(p_.size());
        const auto n = static_cast<std::int32_t>(t_.size());
        const VReg vm = vpu_.dup32(m);
        const VReg vn = vpu_.dup32(n);
        const VReg vneg = vpu_.dup32(-1);

        std::int32_t best = 0;
        bestK = kLo;
        for (int k0 = kLo; k0 <= kHi; k0 += static_cast<int>(L)) {
            const unsigned cnt =
                std::min<long>(L, static_cast<long>(kHi) - k0 + 1);
            VReg pv = vpu_.dup32(static_cast<std::int32_t>(pi));
            VReg tv = vpu_.add32(
                vpu_.dup32(static_cast<std::int32_t>(tiBase)),
                vpu_.index32(k0, 1));
            VReg runs = vpu_.dup32(0);
            Pred act = vpu_.whilelt(0, cnt, L);

            for (;;) {
                const Pred bi = vpu_.cmplt32(pv, vm, act, L);
                const Pred bj = vpu_.cmplt32(tv, vn, act, L);
                const Pred bj0 = vpu_.cmpgt32(tv, vneg, act, L);
                act = vpu_.pAnd(vpu_.pAnd(bi, bj), bj0);
                if (!vpu_.anyActive(act))
                    break;
                const VReg pc =
                    vpu_.gather8(kSitePat, patData(), pv, act, L);
                const VReg tc =
                    vpu_.gather8(kSiteTxt, txtData(), tv, act, L);
                const Pred eq = vpu_.cmpeq32(pc, tc, act, L);
                runs = vpu_.addUnderPred32(runs, 1, eq);
                pv = vpu_.addUnderPred32(pv, 1, eq);
                tv = vpu_.addUnderPred32(tv, 1, eq);
                act = eq;
            }

            const Pred lanes = vpu_.whilelt(0, cnt, L);
            const std::int32_t batchMax =
                vpu_.reduceMax32(runs, lanes, L);
            vpu_.scalarOps(2); // compare/update best and its diagonal
            if (batchMax > best) {
                best = batchMax;
                for (unsigned l = 0; l < cnt; ++l) {
                    if (runs.i32(l) == batchMax) {
                        bestK = k0 + static_cast<int>(l);
                        break;
                    }
                }
            }
        }
        return best;
    }

  private:
    isa::VectorUnit &vpu_;
};

// ====================================================================
// Qz / QzC kernels: residues come from the QBUFFERs.
// ====================================================================

class QzSsEngineBase : public SsEngine
{
  public:
    QzSsEngineBase(isa::VectorUnit &vpu, accel::QzUnit &qz)
        : vpu_(vpu), qz_(qz)
    {}

  protected:
    void
    onBegin(ElementSize esize) override
    {
        esize_ = esize;
        qz_.qzconf(p_.size(), t_.size(), esize);
        if (esize == ElementSize::Bits2) {
            qz_.stageSequence2bit(accel::QzSel::Buf0, p_);
            qz_.stageSequence2bit(accel::QzSel::Buf1, t_);
        } else {
            qz_.stageSequence8bit(accel::QzSel::Buf0, p_);
            qz_.stageSequence8bit(accel::QzSel::Buf1, t_);
        }
    }

    isa::VectorUnit &vpu_;
    accel::QzUnit &qz_;
    ElementSize esize_ = ElementSize::Bits2;
};

/**
 * Shared 16-diagonal window kernel for the Qz / QzC SS engines: one
 * pair of qzmhm window reads per step covers 16 diagonals; only the
 * count source differs (software rbit+clz vs the count ALU).
 */
template <bool kUseCountAlu>
class QzSsKernel : public QzSsEngineBase
{
  public:
    using QzSsEngineBase::QzSsEngineBase;

    std::int32_t
    bestRun(std::int64_t pi, std::int64_t tiBase, int kLo, int kHi,
            int &bestK) override
    {
        constexpr unsigned L = isa::kLanes32;
        const auto m = static_cast<std::int32_t>(p_.size());
        const auto n = static_cast<std::int32_t>(t_.size());
        const auto window = static_cast<std::int32_t>(
            accel::CountAlu::elementsPerSegment(esize_));
        const unsigned shift = accel::CountAlu::shiftFor(esize_);
        const VReg vm = vpu_.dup32(m);
        const VReg vn = vpu_.dup32(n);
        const VReg vzero = vpu_.dup32(0);
        const VReg vneg = vpu_.dup32(-1);
        const VReg vwin = vpu_.dup32(window);
        const accel::QzOpn opn = kUseCountAlu ? accel::QzOpn::Count
                                              : accel::QzOpn::XorWin;

        std::int32_t best = 0;
        bestK = kLo;
        for (int k0 = kLo; k0 <= kHi; k0 += static_cast<int>(L)) {
            const unsigned cnt =
                std::min<long>(L, static_cast<long>(kHi) - k0 + 1);
            VReg pv = vpu_.dup32(static_cast<std::int32_t>(pi));
            VReg tv = vpu_.add32(
                vpu_.dup32(static_cast<std::int32_t>(tiBase)),
                vpu_.index32(k0, 1));
            VReg runs = vpu_.dup32(0);
            Pred act = vpu_.whilelt(0, cnt, L);
            const Pred bj0 = vpu_.cmpgt32(tv, vneg, act, L);
            act = vpu_.pAnd(act, bj0);
            VReg rem = vpu_.min32(vpu_.sub32(vm, pv),
                                  vpu_.sub32(vn, tv));
            act = vpu_.pAnd(act, vpu_.cmpgt32(rem, vzero, act, L));

            while (vpu_.anyActive(act)) {
                const Pred pLo = vpu_.punpkLo(act);
                const Pred pHi = vpu_.punpkHi(act);
                const VReg rLo =
                    qz_.qzmhm(opn, vpu_.widenLo32to64(pv),
                              vpu_.widenLo32to64(tv), pLo,
                              isa::kLanes64);
                const VReg rHi =
                    qz_.qzmhm(opn, vpu_.widenHi32to64(pv),
                              vpu_.widenHi32to64(tv), pHi,
                              isa::kLanes64);
                VReg counts;
                if constexpr (kUseCountAlu) {
                    counts = vpu_.pack64to32(rLo, rHi);
                } else {
                    auto count64 = [&](const VReg &x) {
                        return vpu_.shr64i(vpu_.ctz64(x), shift);
                    };
                    counts = vpu_.pack64to32(count64(rLo),
                                             count64(rHi));
                }
                const VReg adv = vpu_.min32(counts, rem);
                runs = vpu_.addvUnderPred32(runs, adv, act);
                pv = vpu_.addvUnderPred32(pv, adv, act);
                tv = vpu_.addvUnderPred32(tv, adv, act);
                rem = vpu_.addvUnderPred32(rem, vpu_.sub32(vzero, adv),
                                           act);
                const Pred full = vpu_.cmpeq32(counts, vwin, act, L);
                const Pred more = vpu_.cmpgt32(rem, vzero, act, L);
                act = vpu_.pAnd(full, more);
            }

            const Pred lanes = vpu_.whilelt(0, cnt, L);
            const std::int32_t batchMax =
                vpu_.reduceMax32(runs, lanes, L);
            vpu_.scalarOps(2);
            if (batchMax > best) {
                best = batchMax;
                for (unsigned l = 0; l < cnt; ++l) {
                    if (runs.i32(l) == batchMax) {
                        bestK = k0 + static_cast<int>(l);
                        break;
                    }
                }
            }
        }
        return best;
    }
};

using QzSsEngine = QzSsKernel<false>;
using QzCSsEngine = QzSsKernel<true>;

} // namespace

std::int64_t
defaultSsThreshold(std::size_t length, double errorRate)
{
    return std::max<std::int64_t>(
        2, static_cast<std::int64_t>(
               std::ceil(static_cast<double>(length) * errorRate * 1.5)));
}

SsResult
sneakySnake(SsEngine &engine, std::string_view pattern,
            std::string_view text, const SsConfig &config,
            ElementSize esize)
{
    engine.begin(pattern, text, esize);

    const auto m = static_cast<std::int64_t>(pattern.size());
    fatal_if(config.editThreshold <= 0,
             "SneakySnake needs a positive edit threshold");
    const std::int64_t totalE = config.editThreshold;

    // Segment the pattern (grid decomposition for long reads).
    const auto segLen =
        static_cast<std::int64_t>(std::max<std::size_t>(
            64, config.segmentLength));
    const bool segmented = m > 2 * segLen;
    const std::int64_t nSegs = segmented ? (m + segLen - 1) / segLen : 1;

    std::int64_t edits = 0;
    std::int64_t tbase = 0; // text index aligned with the segment start
    for (std::int64_t g = 0; g < nSegs; ++g) {
        const std::int64_t segStart = segmented ? g * segLen : 0;
        const std::int64_t segEnd =
            segmented ? std::min(m, segStart + segLen) : m;
        // Local diagonal freedom: proportional share of the budget
        // with 2x slack for indel drift within the segment.
        const std::int64_t segE =
            segmented
                ? std::max<std::int64_t>(
                      4, 2 * totalE * (segEnd - segStart) / m)
                : totalE;

        std::int64_t pos = segStart;
        int endK = 0;
        while (pos < segEnd) {
            int bestK = 0;
            const std::int32_t best = engine.bestRun(
                pos, tbase + (pos - segStart), -static_cast<int>(segE),
                static_cast<int>(segE), bestK);
            const std::int64_t adv =
                std::min<std::int64_t>(best, segEnd - pos);
            if (adv > 0)
                endK = bestK;
            pos += adv;
            if (pos < segEnd) {
                ++pos;
                ++edits;
                if (edits > totalE)
                    return SsResult{false, edits}; // early rejection
            }
        }
        tbase += (segEnd - segStart) + endK;
    }
    return SsResult{edits <= totalE, edits};
}

std::unique_ptr<SsEngine>
makeSsEngine(Variant variant, isa::VectorUnit *vpu, accel::QzUnit *qz)
{
    switch (variant) {
      case Variant::Ref:
        return std::make_unique<RefSsEngine>();
      case Variant::Base:
        panic_if_not(vpu != nullptr, "Base engine needs a VectorUnit");
        return std::make_unique<BaseSsEngine>(*vpu);
      case Variant::Vec:
        panic_if_not(vpu != nullptr, "Vec engine needs a VectorUnit");
        return std::make_unique<VecSsEngine>(*vpu);
      case Variant::Qz:
        panic_if_not(vpu != nullptr && qz != nullptr,
                     "Qz engine needs a VectorUnit and a QzUnit");
        return std::make_unique<QzSsEngine>(*vpu, *qz);
      case Variant::QzC:
        panic_if_not(vpu != nullptr && qz != nullptr,
                     "QzC engine needs a VectorUnit and a QzUnit");
        return std::make_unique<QzCSsEngine>(*vpu, *qz);
    }
    panic("unknown Variant {}", static_cast<int>(variant));
}

} // namespace quetzal::algos
