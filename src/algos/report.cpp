#include "algos/report.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace quetzal::algos {

std::string
toJson(const RunResult &result)
{
    JsonWriter json;
    json.beginObject()
        .field("algo", result.algo)
        .field("variant", result.variant)
        .field("dataset", result.dataset)
        .field("cycles", result.cycles)
        .field("instructions", result.instructions)
        .field("mem_requests", result.memRequests)
        .field("dram_bytes", result.dramBytes)
        .field("pairs", result.pairs)
        .field("accepted", result.accepted)
        .field("total_score", result.totalScore)
        .field("dp_cells", result.dpCells)
        .field("outputs_match", result.outputsMatch)
        .field("degraded_pairs", result.degradedPairs);
    // Host wall-clock is emitted only when it was recorded
    // (QZ_BENCH_HOSTPERF=1): default reports must stay byte-identical
    // across hosts and shard/serial/parallel execution.
    if (result.hostNanos != 0)
        json.field("host_ns", result.hostNanos);
    json.beginObject("stalls")
        .field("frontend", result.stallCycles(sim::StallKind::Frontend))
        .field("compute", result.stallCycles(sim::StallKind::Compute))
        .field("cache", result.stallCycles(sim::StallKind::Cache))
        .field("structural", result.stallCycles(sim::StallKind::Struct))
        .endObject();
    json.endObject();
    return json.str();
}

std::string
toJson(const CellFailure &failure)
{
    JsonWriter json;
    json.beginObject()
        .field("cell", static_cast<std::uint64_t>(failure.cell))
        .field("key", failure.key)
        .field("kind", failureKindName(failure.kind))
        .field("message", failure.message)
        .field("attempts", std::uint64_t{failure.attempts})
        .endObject();
    return json.str();
}

std::optional<RunResult>
runResultFromJson(const JsonValue &json)
{
    if (!json.isObject())
        return std::nullopt;
    // The identity strings and the cycle count are mandatory; metric
    // fields default to zero so the format can grow new members
    // without invalidating older checkpoints.
    const JsonValue *algo = json.find("algo");
    const JsonValue *variant = json.find("variant");
    const JsonValue *dataset = json.find("dataset");
    const JsonValue *cycles = json.find("cycles");
    if (!algo || !algo->isString() || !variant ||
        !variant->isString() || !dataset || !dataset->isString() ||
        !cycles || !cycles->isNumber())
        return std::nullopt;

    RunResult result;
    result.algo = algo->asString();
    result.variant = variant->asString();
    result.dataset = dataset->asString();
    result.cycles = cycles->asUint();
    result.instructions = json.getUint("instructions");
    result.memRequests = json.getUint("mem_requests");
    result.dramBytes = json.getUint("dram_bytes");
    result.pairs = json.getUint("pairs");
    result.accepted = json.getUint("accepted");
    result.totalScore = json.getInt("total_score");
    result.dpCells = json.getUint("dp_cells");
    result.outputsMatch = json.getBool("outputs_match", true);
    result.degradedPairs = json.getUint("degraded_pairs");
    result.hostNanos = json.getUint("host_ns");
    if (const JsonValue *stalls = json.find("stalls");
        stalls && stalls->isObject()) {
        auto slot = [&result](sim::StallKind kind) -> std::uint64_t & {
            return result.stalls[static_cast<std::size_t>(kind)];
        };
        slot(sim::StallKind::Frontend) = stalls->getUint("frontend");
        slot(sim::StallKind::Compute) = stalls->getUint("compute");
        slot(sim::StallKind::Cache) = stalls->getUint("cache");
        slot(sim::StallKind::Struct) = stalls->getUint("structural");
    }
    return result;
}

std::optional<CellFailure>
cellFailureFromJson(const JsonValue &json)
{
    if (!json.isObject())
        return std::nullopt;
    const JsonValue *cell = json.find("cell");
    const JsonValue *key = json.find("key");
    const JsonValue *kind = json.find("kind");
    if (!cell || !cell->isNumber() || !key || !key->isString() ||
        !kind || !kind->isString())
        return std::nullopt;
    const auto parsedKind = failureKindFromName(kind->asString());
    if (!parsedKind)
        return std::nullopt;

    CellFailure failure;
    failure.cell = static_cast<std::size_t>(cell->asUint());
    failure.key = key->asString();
    failure.kind = *parsedKind;
    failure.message = json.getString("message");
    failure.attempts =
        static_cast<unsigned>(json.getUint("attempts", 1));
    return failure;
}

BenchReport
makeBenchReport(std::string bench, double scale, std::uint64_t threads,
                const BatchOutcome &outcome)
{
    BenchReport report;
    report.bench = std::move(bench);
    report.scale = scale;
    report.threads = threads;
    report.resumedCells = outcome.resumedCells;
    report.retries = outcome.retries;
    report.failures = outcome.failures;
    if (outcome.shard) {
        report.shard = outcome.shard;
        for (const std::size_t cell : outcome.ownedCells) {
            report.cells.push_back(cell);
            report.results.push_back(outcome.results[cell]);
        }
    } else {
        report.results = outcome.results;
    }
    return report;
}

std::string
toJson(const BenchReport &report)
{
    JsonWriter json;
    json.beginObject()
        .field("bench", report.bench)
        .field("scale", report.scale)
        .field("threads", report.threads)
        .field("resumed_cells", report.resumedCells)
        .field("retries", report.retries);
    if (report.shard) {
        json.field("shard", shardName(*report.shard));
        json.beginArray("cells");
        for (const std::uint64_t cell : report.cells)
            json.rawValue(std::to_string(cell));
        json.endArray();
    }
    json.beginArray("results");
    for (const auto &result : report.results)
        json.rawValue(toJson(result));
    json.endArray();
    json.beginArray("failures");
    for (const auto &failure : report.failures)
        json.rawValue(toJson(failure));
    json.endArray();
    json.endObject();
    return json.str();
}

std::optional<BenchReport>
benchReportFromJson(const JsonValue &json)
{
    if (!json.isObject())
        return std::nullopt;
    const JsonValue *bench = json.find("bench");
    const JsonValue *results = json.find("results");
    if (!bench || !bench->isString() || !results ||
        !results->isArray())
        return std::nullopt;

    BenchReport report;
    report.bench = bench->asString();
    if (const JsonValue *scale = json.find("scale");
        scale && scale->isNumber())
        report.scale = scale->asDouble();
    report.threads = json.getUint("threads");
    report.resumedCells = json.getUint("resumed_cells");
    report.retries = json.getUint("retries");
    if (const std::string shard = json.getString("shard");
        !shard.empty())
        report.shard = parseShardSpec(shard);
    if (const JsonValue *cells = json.find("cells");
        cells && cells->isArray()) {
        for (const JsonValue &cell : cells->items()) {
            if (!cell.isNumber())
                return std::nullopt;
            report.cells.push_back(cell.asUint());
        }
    }
    for (const JsonValue &item : results->items()) {
        auto result = runResultFromJson(item);
        if (!result)
            return std::nullopt;
        report.results.push_back(std::move(*result));
    }
    if (const JsonValue *failures = json.find("failures");
        failures && failures->isArray()) {
        for (const JsonValue &item : failures->items()) {
            auto failure = cellFailureFromJson(item);
            if (!failure)
                return std::nullopt;
            report.failures.push_back(std::move(*failure));
        }
    }
    return report;
}

BenchReport
mergeShardReports(std::vector<BenchReport> shards)
{
    fatal_if(shards.empty(), "no shard reports to merge");
    for (const BenchReport &shard : shards)
        fatal_if(!shard.shard,
                 "report '{}' has no shard member — it is already an "
                 "unsharded report",
                 shard.bench);
    std::sort(shards.begin(), shards.end(),
              [](const BenchReport &a, const BenchReport &b) {
                  return a.shard->index < b.shard->index;
              });

    const BenchReport &first = shards.front();
    const unsigned count = first.shard->count;
    fatal_if(shards.size() != count,
             "sweep was split {} ways but {} shard report(s) given",
             count, shards.size());

    std::size_t total = 0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
        const BenchReport &shard = shards[s];
        fatal_if(shard.shard->count != count,
                 "shard {} says {} total shards, shard {} says {}",
                 first.shard->index, count, shard.shard->index,
                 shard.shard->count);
        fatal_if(shard.shard->index != s + 1,
                 "shard {}/{} is missing or duplicated", s + 1, count);
        fatal_if(shard.bench != first.bench,
                 "cannot merge different benches ('{}' vs '{}')",
                 first.bench, shard.bench);
        fatal_if(shard.scale != first.scale,
                 "cannot merge different scales ({} vs {})",
                 first.scale, shard.scale);
        fatal_if(shard.threads != first.threads,
                 "cannot merge different thread counts ({} vs {})",
                 first.threads, shard.threads);
        fatal_if(shard.cells.size() != shard.results.size(),
                 "shard {}/{}: {} cell index(es) for {} result(s)",
                 shard.shard->index, count, shard.cells.size(),
                 shard.results.size());
        total += shard.results.size();
    }

    BenchReport merged;
    merged.bench = first.bench;
    merged.scale = first.scale;
    merged.threads = first.threads;
    merged.results.resize(total);
    std::vector<char> filled(total, 0);
    for (BenchReport &shard : shards) {
        merged.resumedCells += shard.resumedCells;
        merged.retries += shard.retries;
        for (std::size_t j = 0; j < shard.cells.size(); ++j) {
            const std::uint64_t cell = shard.cells[j];
            fatal_if(cell >= total,
                     "shard {}/{} claims cell {} of a {}-cell sweep",
                     shard.shard->index, count, cell, total);
            fatal_if(filled[cell],
                     "cell {} is claimed by more than one shard", cell);
            filled[cell] = 1;
            merged.results[cell] = std::move(shard.results[j]);
        }
        for (CellFailure &failure : shard.failures)
            merged.failures.push_back(std::move(failure));
    }
    for (std::size_t i = 0; i < total; ++i)
        fatal_if(!filled[i], "cell {} is covered by no shard", i);
    std::sort(merged.failures.begin(), merged.failures.end(),
              [](const CellFailure &a, const CellFailure &b) {
                  return a.cell < b.cell;
              });
    return merged;
}

std::string
instructionProfileJson(const sim::Pipeline &pipeline)
{
    JsonWriter json;
    json.beginObject()
        .field("instructions", pipeline.instructions())
        .field("cycles", pipeline.totalCycles());
    json.beginObject("op_counts");
    for (int c = 0; c < static_cast<int>(sim::OpClass::NumClasses);
         ++c) {
        const auto cls = static_cast<sim::OpClass>(c);
        const auto count = pipeline.opCount(cls);
        if (count > 0)
            json.field(sim::opClassName(cls), count);
    }
    json.endObject();
    json.endObject();
    return json.str();
}

} // namespace quetzal::algos
