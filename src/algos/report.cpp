#include "algos/report.hpp"

namespace quetzal::algos {

std::string
toJson(const RunResult &result)
{
    JsonWriter json;
    json.beginObject()
        .field("algo", result.algo)
        .field("variant", result.variant)
        .field("dataset", result.dataset)
        .field("cycles", result.cycles)
        .field("instructions", result.instructions)
        .field("mem_requests", result.memRequests)
        .field("dram_bytes", result.dramBytes)
        .field("pairs", result.pairs)
        .field("accepted", result.accepted)
        .field("total_score", result.totalScore)
        .field("dp_cells", result.dpCells)
        .field("outputs_match", result.outputsMatch);
    json.beginObject("stalls")
        .field("frontend", result.stallCycles(sim::StallKind::Frontend))
        .field("compute", result.stallCycles(sim::StallKind::Compute))
        .field("cache", result.stallCycles(sim::StallKind::Cache))
        .field("structural", result.stallCycles(sim::StallKind::Struct))
        .endObject();
    json.endObject();
    return json.str();
}

std::string
instructionProfileJson(const sim::Pipeline &pipeline)
{
    JsonWriter json;
    json.beginObject()
        .field("instructions", pipeline.instructions())
        .field("cycles", pipeline.totalCycles());
    json.beginObject("op_counts");
    for (int c = 0; c < static_cast<int>(sim::OpClass::NumClasses);
         ++c) {
        const auto cls = static_cast<sim::OpClass>(c);
        const auto count = pipeline.opCount(cls);
        if (count > 0)
            json.field(sim::opClassName(cls), count);
    }
    json.endObject();
    json.endObject();
    return json.str();
}

} // namespace quetzal::algos
