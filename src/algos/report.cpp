#include "algos/report.hpp"

namespace quetzal::algos {

std::string
toJson(const RunResult &result)
{
    JsonWriter json;
    json.beginObject()
        .field("algo", result.algo)
        .field("variant", result.variant)
        .field("dataset", result.dataset)
        .field("cycles", result.cycles)
        .field("instructions", result.instructions)
        .field("mem_requests", result.memRequests)
        .field("dram_bytes", result.dramBytes)
        .field("pairs", result.pairs)
        .field("accepted", result.accepted)
        .field("total_score", result.totalScore)
        .field("dp_cells", result.dpCells)
        .field("outputs_match", result.outputsMatch)
        .field("degraded_pairs", result.degradedPairs);
    json.beginObject("stalls")
        .field("frontend", result.stallCycles(sim::StallKind::Frontend))
        .field("compute", result.stallCycles(sim::StallKind::Compute))
        .field("cache", result.stallCycles(sim::StallKind::Cache))
        .field("structural", result.stallCycles(sim::StallKind::Struct))
        .endObject();
    json.endObject();
    return json.str();
}

std::string
toJson(const CellFailure &failure)
{
    JsonWriter json;
    json.beginObject()
        .field("cell", static_cast<std::uint64_t>(failure.cell))
        .field("key", failure.key)
        .field("kind", failureKindName(failure.kind))
        .field("message", failure.message)
        .field("attempts", std::uint64_t{failure.attempts})
        .endObject();
    return json.str();
}

std::optional<RunResult>
runResultFromJson(const JsonValue &json)
{
    if (!json.isObject())
        return std::nullopt;
    // The identity strings and the cycle count are mandatory; metric
    // fields default to zero so the format can grow new members
    // without invalidating older checkpoints.
    const JsonValue *algo = json.find("algo");
    const JsonValue *variant = json.find("variant");
    const JsonValue *dataset = json.find("dataset");
    const JsonValue *cycles = json.find("cycles");
    if (!algo || !algo->isString() || !variant ||
        !variant->isString() || !dataset || !dataset->isString() ||
        !cycles || !cycles->isNumber())
        return std::nullopt;

    RunResult result;
    result.algo = algo->asString();
    result.variant = variant->asString();
    result.dataset = dataset->asString();
    result.cycles = cycles->asUint();
    result.instructions = json.getUint("instructions");
    result.memRequests = json.getUint("mem_requests");
    result.dramBytes = json.getUint("dram_bytes");
    result.pairs = json.getUint("pairs");
    result.accepted = json.getUint("accepted");
    result.totalScore = json.getInt("total_score");
    result.dpCells = json.getUint("dp_cells");
    result.outputsMatch = json.getBool("outputs_match", true);
    result.degradedPairs = json.getUint("degraded_pairs");
    if (const JsonValue *stalls = json.find("stalls");
        stalls && stalls->isObject()) {
        auto slot = [&result](sim::StallKind kind) -> std::uint64_t & {
            return result.stalls[static_cast<std::size_t>(kind)];
        };
        slot(sim::StallKind::Frontend) = stalls->getUint("frontend");
        slot(sim::StallKind::Compute) = stalls->getUint("compute");
        slot(sim::StallKind::Cache) = stalls->getUint("cache");
        slot(sim::StallKind::Struct) = stalls->getUint("structural");
    }
    return result;
}

std::string
instructionProfileJson(const sim::Pipeline &pipeline)
{
    JsonWriter json;
    json.beginObject()
        .field("instructions", pipeline.instructions())
        .field("cycles", pipeline.totalCycles());
    json.beginObject("op_counts");
    for (int c = 0; c < static_cast<int>(sim::OpClass::NumClasses);
         ++c) {
        const auto cls = static_cast<sim::OpClass>(c);
        const auto count = pipeline.opCount(cls);
        if (count > 0)
            json.field(sim::opClassName(cls), count);
    }
    json.endObject();
    json.endObject();
    return json.str();
}

} // namespace quetzal::algos
