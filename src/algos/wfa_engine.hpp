/**
 * @file
 * Per-variant execution engines for the wavefront algorithms.
 *
 * WFA and BiWFA share their control structure (wave bookkeeping,
 * termination, traceback); what differs between the paper's evaluation
 * bars is how the two hot kernels execute:
 *
 *  - extend(): walk every diagonal's match run (55-90% of runtime);
 *  - nextWave(): compute wave s+1 from wave s.
 *
 * Engines implement those kernels per variant: Ref (untimed golden
 * model), Base (timed scalar), Vec (SVE intrinsics with scatter/gather,
 * Fig. 2a), Qz (QBUFFER qzmhm<cmpeq>, Fig. 6a without the count unit),
 * and QzC (qzmhm<qzcount>, the full Fig. 6a). Every engine computes
 * bit-identical offsets; only the charged timing differs.
 */
#ifndef QUETZAL_ALGOS_WFA_ENGINE_HPP
#define QUETZAL_ALGOS_WFA_ENGINE_HPP

#include <memory>
#include <span>
#include <string_view>

#include "algos/variant.hpp"
#include "algos/wavefront.hpp"
#include "genomics/encoding.hpp"
#include "isa/scalarunit.hpp"
#include "isa/vectorunit.hpp"
#include "quetzal/qzunit.hpp"

namespace quetzal::algos {

/** Direction of a wavefront pass (BiWFA runs both). */
enum class Dir
{
    Fwd, //!< align pattern/text left to right
    Rev, //!< align the reversed pair (indices mapped, no copy)
};

/**
 * Per-alignment resource ceilings for the wavefront control loops.
 *
 * Adversarial pairs (high divergence, ultralong reads) make the WFA
 * wavefront table grow as O(s^2); the budget turns that unbounded
 * growth into graceful degradation. Both ceilings apply per begin()
 * scope (one alignment problem; BiWFA sub-problems each get a fresh
 * scope). A zero ceiling means unlimited. On the first breach the
 * aligner restarts the pair with the adaptive-pruning heuristic
 * (maxLag = fallbackLag) and flags the result as degraded; if the
 * pruned retry breaches again, a ResourceError is raised and the
 * batch layer records a Resource failure (docs/ROBUSTNESS.md).
 */
struct ResourceBudget
{
    std::uint64_t maxWaveBytes = 0; //!< retained wavefront storage cap
    std::uint64_t maxSteps = 0;     //!< score-loop iteration cap
    std::int32_t fallbackLag = 64;  //!< pruning lag of the degraded retry

    bool
    enabled() const
    {
        return maxWaveBytes != 0 || maxSteps != 0;
    }
};

/** Abstract per-variant kernel executor. */
class WfaEngine
{
  public:
    virtual ~WfaEngine() = default;

    /**
     * Prepare for one pattern/text pair. QUETZAL engines stage the
     * sequences into the QBUFFERs here (the paper includes staging
     * time in every measurement).
     *
     * @param esize Bits2 for DNA/RNA, Bits8 for protein alphabets.
     */
    void begin(std::string_view pattern, std::string_view text,
               genomics::ElementSize esize = genomics::ElementSize::Bits2);

    /** Extend every valid offset of @p wave along its diagonal. */
    virtual void extend(Wave &wave, Dir dir) = 0;

    /** Compute @p next (range pre-set by the caller) from @p prev. */
    virtual void nextWave(const Wave &prev, Wave &next) = 0;

    /**
     * One term of a generic wavefront combination:
     * dst[k] = max over terms of src[k + kShift] + addend.
     * Used by the gap-affine wavefront recurrences (I/D/M components).
     */
    struct WaveTerm
    {
        const Wave *src;     //!< nullptr terms are skipped
        int kShift;
        std::int32_t addend;
    };

    /**
     * Predicated elementwise max of shifted source rows into @p dst
     * (range pre-set by the caller), clamped to valid offsets like
     * nextWave. Timed per variant like a wave update.
     */
    virtual void combineWave(std::span<const WaveTerm> terms,
                             Wave &dst) = 0;

    /**
     * Charge one traceback hop: reading the three candidate
     * predecessor cells (real wave-table addresses, so the cache
     * model sees the traceback's working set).
     */
    virtual void chargeTracebackHop(const std::int32_t *ins,
                                    const std::int32_t *sub,
                                    const std::int32_t *del) = 0;

    /** Charge emitting a run of @p matchColumns 'M' columns. */
    virtual void chargeTracebackRun(std::size_t matchColumns) = 0;

    /**
     * Charge BiWFA's overlap scan of forward wave @p f against
     * reverse wave @p r over forward diagonals [lo, hi].
     */
    virtual void chargeOverlapCheck(const Wave &f, const Wave &r, int lo,
                                    int hi) = 0;

    std::size_t patternLength() const { return p_.size(); }
    std::size_t textLength() const { return t_.size(); }

    /** Install @p budget; applies to every subsequent alignment. */
    void setBudget(const ResourceBudget &budget) { budget_ = budget; }
    const ResourceBudget &budget() const { return budget_; }

    /**
     * Watchdog accounting, driven by the control loops (wfa.cpp /
     * biwfa.cpp): one step per score iteration, one alloc note per
     * retained wavefront row. begin() resets both counters.
     */
    void noteStep() { ++stepsUsed_; }
    void noteWaveAlloc(std::size_t elems)
    {
        waveBytesUsed_ += elems * sizeof(std::int32_t);
    }

    /** Drop usage accounting for rows released back to the pool. */
    void noteWaveFree(std::size_t elems)
    {
        const std::uint64_t bytes = elems * sizeof(std::int32_t);
        waveBytesUsed_ -= std::min(waveBytesUsed_, bytes);
    }

    std::uint64_t stepsUsed() const { return stepsUsed_; }
    std::uint64_t waveBytesUsed() const { return waveBytesUsed_; }

    /** True when either ceiling has been breached. */
    bool
    budgetExceeded() const
    {
        return (budget_.maxSteps != 0 &&
                stepsUsed_ > budget_.maxSteps) ||
               (budget_.maxWaveBytes != 0 &&
                waveBytesUsed_ > budget_.maxWaveBytes);
    }

    /** Clamp a combined offset to the valid range for diagonal k. */
    std::int32_t
    clampOffset(std::int32_t best, int k) const
    {
        const std::int64_t m = static_cast<std::int64_t>(p_.size());
        const std::int64_t n = static_cast<std::int64_t>(t_.size());
        const std::int64_t jmax = std::min<std::int64_t>(n, m + k);
        if (best < 0 || best > jmax)
            return kOffNone;
        return best;
    }

    /** Functional combineWave value (golden model for all engines). */
    std::int32_t
    combineValue(std::span<const WaveTerm> terms, int k) const
    {
        std::int32_t best = kOffNone;
        for (const WaveTerm &term : terms) {
            if (!term.src)
                continue;
            const int sk = k + term.kShift;
            if (sk < term.src->lo() - 1 || sk > term.src->hi() + 1)
                continue;
            const std::int32_t v = term.src->at(sk);
            if (v == kOffNone)
                continue;
            best = std::max(best, v + term.addend);
        }
        if (best == kOffNone)
            return kOffNone;
        return clampOffset(best, k);
    }

  protected:
    /** Pattern residue at virtual index @p i under @p dir. */
    char
    pat(Dir dir, std::size_t i) const
    {
        return dir == Dir::Fwd ? p_[i] : p_[p_.size() - 1 - i];
    }

    /** Text residue at virtual index @p j under @p dir. */
    char
    txt(Dir dir, std::size_t j) const
    {
        return dir == Dir::Fwd ? t_[j] : t_[t_.size() - 1 - j];
    }

    /**
     * Functional next-wave value for diagonal @p k: the classic
     * max(ins, sub, del) with range clamping. Shared by every engine
     * so results are bit-identical by construction.
     */
    std::int32_t
    nextValue(const Wave &prev, int k) const
    {
        const std::int32_t ins = prev.at(k - 1) + 1;
        const std::int32_t sub = prev.at(k) + 1;
        const std::int32_t del = prev.at(k + 1);
        std::int32_t best = std::max(ins, std::max(sub, del));
        const std::int64_t m = static_cast<std::int64_t>(p_.size());
        const std::int64_t n = static_cast<std::int64_t>(t_.size());
        const std::int64_t jmax = std::min<std::int64_t>(n, m + k);
        if (best < 0 || best > jmax)
            best = kOffNone;
        return best;
    }

    /** Hook for variant-specific per-pair setup (QBUFFER staging). */
    virtual void onBegin(genomics::ElementSize esize);

    /**
     * Sentinel padding around the engine-local sequence copies: the
     * word-wise kernels read up to 8 bytes past either end. Pattern
     * and text use distinct non-residue sentinels so runs can never
     * extend across a boundary.
     */
    static constexpr std::size_t kSeqPad = 8;

    /** Base pointer of the padded pattern (real residue 0). */
    const char *patData() const { return p_.data(); }
    /** Base pointer of the padded text (real residue 0). */
    const char *txtData() const { return t_.data(); }

    std::string_view p_; //!< view of the real residues (padded store)
    std::string_view t_;

  private:
    std::string paddedP_;
    std::string paddedT_;
    ResourceBudget budget_;
    std::uint64_t stepsUsed_ = 0;
    std::uint64_t waveBytesUsed_ = 0;
};

/**
 * Internal signal: a budget ceiling was hit mid-alignment. The
 * control loops in wfa.cpp/biwfa.cpp catch it and degrade to the
 * pruned variant; it never escapes the public alignment entry points.
 */
struct WfaBudgetExceeded
{
    std::uint64_t steps;
    std::uint64_t waveBytes;
};

/**
 * Create the engine for @p variant.
 *
 * @param vpu required for Base/Vec/Qz/QzC (timing); ignored for Ref.
 * @param qz required for Qz/QzC.
 */
std::unique_ptr<WfaEngine> makeWfaEngine(Variant variant,
                                         isa::VectorUnit *vpu,
                                         accel::QzUnit *qz);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_WFA_ENGINE_HPP
