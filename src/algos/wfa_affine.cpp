#include "algos/wfa_affine.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/logging.hpp"

namespace quetzal::algos {

namespace {

/** The three wavefront components at one penalty value. */
struct WaveSet
{
    std::optional<Wave> m;
    std::optional<Wave> i;
    std::optional<Wave> d;
};

/** Source row for a component about to be computed. */
struct Source
{
    const Wave *wave = nullptr;
    int kShift = 0;
    std::int32_t addend = 0;
};

/** Range union of shifted sources, clamped to [-m, n]. */
bool
rangeOf(std::initializer_list<Source> sources, std::int64_t m,
        std::int64_t n, int &lo, int &hi)
{
    bool any = false;
    lo = 0;
    hi = 0;
    for (const Source &src : sources) {
        if (!src.wave)
            continue;
        const int slo = src.wave->lo() + src.kShift;
        const int shi = src.wave->hi() + src.kShift;
        if (!any) {
            lo = slo;
            hi = shi;
            any = true;
        } else {
            lo = std::min(lo, slo);
            hi = std::max(hi, shi);
        }
    }
    if (!any)
        return false;
    lo = std::max(lo, static_cast<int>(-m));
    hi = std::min(hi, static_cast<int>(n));
    return lo <= hi;
}

const Wave *
mWave(const std::vector<WaveSet> &sets, std::int64_t s)
{
    if (s < 0 || static_cast<std::size_t>(s) >= sets.size())
        return nullptr;
    return sets[static_cast<std::size_t>(s)].m ?
               &*sets[static_cast<std::size_t>(s)].m : nullptr;
}

const Wave *
iWave(const std::vector<WaveSet> &sets, std::int64_t s)
{
    if (s < 0 || static_cast<std::size_t>(s) >= sets.size())
        return nullptr;
    return sets[static_cast<std::size_t>(s)].i ?
               &*sets[static_cast<std::size_t>(s)].i : nullptr;
}

const Wave *
dWave(const std::vector<WaveSet> &sets, std::int64_t s)
{
    if (s < 0 || static_cast<std::size_t>(s) >= sets.size())
        return nullptr;
    return sets[static_cast<std::size_t>(s)].d ?
               &*sets[static_cast<std::size_t>(s)].d : nullptr;
}

/** Offset at diagonal k, or kOffNone when absent/out of range. */
std::int32_t
at(const Wave *wave, int k)
{
    if (!wave || k < wave->lo() || k > wave->hi())
        return kOffNone;
    return wave->at(k);
}

Cigar
affineTraceback(WfaEngine &engine, const std::vector<WaveSet> &sets,
                const AffinePenalties &pen, std::int64_t score,
                std::int64_t m, std::int64_t n)
{
    Cigar rev;
    std::int64_t s = score;
    int k = static_cast<int>(n - m);
    std::int32_t j = static_cast<std::int32_t>(n);
    enum class St { M, I, D } st = St::M;
    const std::int64_t oe = pen.gapOpen + pen.gapExtend;

    for (;;) {
        panic_if_not(s >= 0, "affine traceback underflowed the score");
        if (st == St::M) {
            if (s == 0 && k == 0) {
                panic_if_not(j >= 0, "affine traceback overshot");
                rev.append('M', static_cast<std::size_t>(j));
                engine.chargeTracebackRun(static_cast<std::size_t>(j));
                break;
            }
            const std::int32_t viaX =
                s >= pen.mismatch
                    ? at(mWave(sets, s - pen.mismatch), k)
                    : kOffNone;
            const std::int32_t a =
                viaX == kOffNone ? kOffNone : viaX + 1;
            const std::int32_t b = at(iWave(sets, s), k);
            const std::int32_t c = at(dWave(sets, s), k);
            const std::int32_t base = std::max(a, std::max(b, c));
            panic_if_not(base > kOffNone / 2,
                         "affine traceback: dead end at s={}, k={}", s,
                         k);
            const std::int32_t matches = j - base;
            panic_if_not(matches >= 0,
                         "affine traceback: negative run at s={}, k={}",
                         s, k);
            rev.append('M', static_cast<std::size_t>(matches));
            engine.chargeTracebackRun(
                static_cast<std::size_t>(matches));
            if (base == a) {
                rev.append('X');
                s -= pen.mismatch;
                j = base - 1;
            } else if (base == b) {
                st = St::I;
                j = base;
            } else {
                st = St::D;
                j = base;
            }
        } else if (st == St::I) {
            rev.append('I');
            const std::int32_t cur = at(iWave(sets, s), k);
            const std::int32_t viaM =
                s >= oe ? at(mWave(sets, s - oe), k - 1) : kOffNone;
            if (viaM != kOffNone && cur == viaM + 1) {
                s -= oe;
                st = St::M;
            } else {
                const std::int32_t viaI =
                    s >= pen.gapExtend
                        ? at(iWave(sets, s - pen.gapExtend), k - 1)
                        : kOffNone;
                panic_if_not(viaI != kOffNone && cur == viaI + 1,
                             "affine traceback: broken I chain at "
                             "s={}, k={}", s, k);
                s -= pen.gapExtend;
            }
            k -= 1;
            j = cur - 1;
        } else {
            rev.append('D');
            const std::int32_t cur = at(dWave(sets, s), k);
            const std::int32_t viaM =
                s >= oe ? at(mWave(sets, s - oe), k + 1) : kOffNone;
            if (viaM != kOffNone && cur == viaM) {
                s -= oe;
                st = St::M;
            } else {
                const std::int32_t viaD =
                    s >= pen.gapExtend
                        ? at(dWave(sets, s - pen.gapExtend), k + 1)
                        : kOffNone;
                panic_if_not(viaD != kOffNone && cur == viaD,
                             "affine traceback: broken D chain at "
                             "s={}, k={}", s, k);
                s -= pen.gapExtend;
            }
            k += 1;
            j = cur;
        }
    }
    std::reverse(rev.ops.begin(), rev.ops.end());
    return rev;
}

} // namespace

std::int64_t
affinePenaltyOf(const Cigar &cigar, const AffinePenalties &pen)
{
    std::int64_t penalty = 0;
    char prev = 'M';
    for (char op : cigar.ops) {
        switch (op) {
          case 'M':
            break;
          case 'X':
            penalty += pen.mismatch;
            break;
          case 'I':
          case 'D':
            penalty += pen.gapExtend;
            if (op != prev)
                penalty += pen.gapOpen;
            break;
          default:
            panic("unknown CIGAR op '{}'", op);
        }
        prev = op;
    }
    return penalty;
}

AffineResult
affineWfaAlign(WfaEngine &engine, std::string_view pattern,
               std::string_view text, const AffinePenalties &pen,
               bool traceback, genomics::ElementSize esize)
{
    fatal_if(pen.mismatch <= 0 || pen.gapExtend <= 0 || pen.gapOpen < 0,
             "affine penalties need x > 0, e > 0, o >= 0");

    AffineResult result;
    if (pattern.empty() || text.empty()) {
        const auto gap = static_cast<std::int64_t>(
            std::max(pattern.size(), text.size()));
        if (gap > 0) {
            result.score = pen.gapOpen + pen.gapExtend * gap;
            if (traceback)
                result.cigar.append(pattern.empty() ? 'I' : 'D',
                                    static_cast<std::size_t>(gap));
        }
        return result;
    }

    const auto m = static_cast<std::int64_t>(pattern.size());
    const auto n = static_cast<std::int64_t>(text.size());
    const int kEnd = static_cast<int>(n - m);
    const std::int64_t oe = pen.gapOpen + pen.gapExtend;

    engine.begin(pattern, text, esize);

    std::vector<WaveSet> sets(1);
    sets[0].m.emplace(0, 0);
    sets[0].m->set(0, 0);
    engine.extend(*sets[0].m, Dir::Fwd);

    auto done = [&](std::int64_t s) {
        const Wave *wave = mWave(sets, s);
        return wave && wave->contains(kEnd) && wave->at(kEnd) >= n;
    };

    std::int64_t s = 0;
    const std::int64_t bound =
        (m + n + 2) * std::max<std::int64_t>(pen.mismatch, oe) + 1;
    while (!done(s)) {
        ++s;
        panic_if_not(s <= bound, "affine WFA exceeded its score bound");
        sets.emplace_back();
        WaveSet &cur = sets.back();

        const Wave *mx = s >= pen.mismatch
                             ? mWave(sets, s - pen.mismatch)
                             : nullptr;
        const Wave *moe = s >= oe ? mWave(sets, s - oe) : nullptr;
        const Wave *ie = s >= pen.gapExtend
                             ? iWave(sets, s - pen.gapExtend)
                             : nullptr;
        const Wave *de = s >= pen.gapExtend
                             ? dWave(sets, s - pen.gapExtend)
                             : nullptr;

        int lo, hi;
        if (rangeOf({Source{moe, +1, 0}, Source{ie, +1, 0}}, m, n, lo,
                    hi)) {
            cur.i.emplace(lo, hi);
            const WfaEngine::WaveTerm terms[] = {{moe, -1, 1},
                                                 {ie, -1, 1}};
            engine.combineWave(terms, *cur.i);
        }
        if (rangeOf({Source{moe, -1, 0}, Source{de, -1, 0}}, m, n, lo,
                    hi)) {
            cur.d.emplace(lo, hi);
            const WfaEngine::WaveTerm terms[] = {{moe, +1, 0},
                                                 {de, +1, 0}};
            engine.combineWave(terms, *cur.d);
        }
        const Wave *iCur = cur.i ? &*cur.i : nullptr;
        const Wave *dCur = cur.d ? &*cur.d : nullptr;
        if (rangeOf({Source{mx, 0, 0}, Source{iCur, 0, 0},
                     Source{dCur, 0, 0}},
                    m, n, lo, hi)) {
            cur.m.emplace(lo, hi);
            const WfaEngine::WaveTerm terms[] = {
                {mx, 0, 1}, {iCur, 0, 0}, {dCur, 0, 0}};
            engine.combineWave(terms, *cur.m);
            engine.extend(*cur.m, Dir::Fwd);
        }
    }

    result.score = s;
    if (traceback)
        result.cigar = affineTraceback(engine, sets, pen, s, m, n);
    return result;
}

} // namespace quetzal::algos
