/**
 * @file
 * Minimal SAM (Sequence Alignment/Map) output.
 *
 * Alignments leave the library as CIGAR transcripts; downstream
 * genomics tooling speaks SAM. This writer emits a valid header and
 * alignment lines, with either SAM-1.4 extended CIGARs (=/X) or the
 * classic folded form (M).
 */
#ifndef QUETZAL_ALGOS_SAM_HPP
#define QUETZAL_ALGOS_SAM_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "algos/cigar.hpp"

namespace quetzal::algos {

/**
 * Convert an internal transcript to a SAM CIGAR string.
 * @param extended true: keep '='/'X' (SAM 1.4); false: fold both
 *        into 'M'.
 */
std::string toSamCigar(const Cigar &cigar, bool extended);

/** One SAM alignment record. */
struct SamRecord
{
    std::string qname;        //!< read name
    std::string rname = "*";  //!< reference name
    std::int64_t pos = 1;     //!< 1-based leftmost position
    int mapq = 60;
    std::string cigar = "*";
    std::string seq = "*";
};

/** Write the @HD/@SQ/@PG header. */
void writeSamHeader(std::ostream &out, std::string_view refName,
                    std::size_t refLength);

/** Write one alignment line. */
void writeSamRecord(std::ostream &out, const SamRecord &record);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_SAM_HPP
