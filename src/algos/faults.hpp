/**
 * @file
 * Failure taxonomy and fault plumbing for the batch experiment engine.
 *
 * Production-scale bench matrices meet adversarial cells — degenerate
 * inputs, blown resource budgets, injected flakiness — and must record
 * them instead of dying (ROADMAP north-star; docs/ROBUSTNESS.md).
 * This header defines what a failure *is* (FailureKind, CellFailure),
 * how one is classified from an in-flight exception, the retry policy
 * for transient kinds, the QZ_FAULT_INJECT spec that makes every
 * failure path deterministically testable, and the stable cell-key
 * hashing that checkpoint/resume keys completed work by.
 */
#ifndef QUETZAL_ALGOS_FAULTS_HPP
#define QUETZAL_ALGOS_FAULTS_HPP

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <string_view>

#include "algos/runner.hpp"

namespace quetzal::genomics {
class PairSource;
}

namespace quetzal::algos {

/** Why a cell failed (mirrors the exception taxonomy in logging.hpp). */
enum class FailureKind
{
    Fatal,     //!< FatalError: bad input/config, terminal
    Panic,     //!< PanicError: library invariant violation, terminal
    Transient, //!< TransientError: expected to clear on retry
    Resource,  //!< ResourceError: budget exhausted post-degradation
    Unknown,   //!< anything else (std::exception or foreign throw)
};

/** Lower-case kind name as used in JSON and the QZ_FAULT_INJECT spec. */
std::string_view failureKindName(FailureKind kind);

/** Parse a kind name; nullopt when unrecognized. */
std::optional<FailureKind> failureKindFromName(std::string_view name);

/** Classify an in-flight exception into the taxonomy. */
FailureKind classifyException(std::exception_ptr error);

/** Human-readable message of an in-flight exception. */
std::string exceptionMessage(std::exception_ptr error);

/** Structured record of one failed evaluation cell. */
struct CellFailure
{
    std::size_t cell = 0; //!< submission index into the batch
    std::string key;      //!< canonical cell key (cellKey())
    FailureKind kind = FailureKind::Unknown;
    std::string message;
    unsigned attempts = 1; //!< how many attempts were made in total
};

/**
 * Bounded-retry policy for cells whose failure is classified
 * Transient. Backoff is deterministic (pure function of the attempt
 * number) so a retried sweep stays reproducible; terminal kinds
 * (Fatal/Panic/Resource/Unknown) never retry.
 */
struct RetryPolicy
{
    unsigned maxAttempts = 3;   //!< total attempts incl. the first
    unsigned backoffBaseMs = 0; //!< 0 = no sleep between attempts

    /** Delay before attempt @p attempt (2nd attempt = 1): base*2^n. */
    unsigned
    backoffMs(unsigned attempt) const
    {
        if (backoffBaseMs == 0 || attempt == 0)
            return 0;
        const unsigned shift = attempt > 16 ? 16 : attempt - 1;
        return backoffBaseMs << shift;
    }
};

/**
 * How an injected fault manifests. Throw raises the taxonomy
 * exception matching FaultInjection::kind in-process — the batch
 * engine's path. Crash and Hang are worker-process-level kinds that
 * only fire inside qz-serve workers (src/serve/worker.cpp): Crash
 * abort()s the worker mid-request, Hang sleeps far past any sane
 * per-request deadline, so the service's respawn and deadline-kill
 * recovery paths are deterministically testable. The in-process
 * batch engine ignores non-Throw injections.
 */
enum class FaultAction
{
    Throw,
    Crash,
    Hang,
};

/** Lower-case action name as used in the QZ_FAULT_INJECT spec. */
std::string_view faultActionName(FaultAction action);

/**
 * Deterministic fault injection: cell @p cell throws a @p kind
 * failure on its first @p times executions (attempts count, so a
 * transient injection with times < RetryPolicy::maxAttempts is healed
 * by the retry path). Spec syntax: "CELL:KIND[:TIMES]" with KIND one
 * of fatal|panic|transient|resource|unknown|crash|hang, TIMES
 * defaulting to 1 — e.g. QZ_FAULT_INJECT=3:transient:2. The crash and
 * hang kinds select a worker-process-level FaultAction instead of an
 * exception kind; under qz-serve, CELL is the request id.
 */
struct FaultInjection
{
    std::size_t cell = 0;
    FailureKind kind = FailureKind::Fatal;
    unsigned times = 1;
    FaultAction action = FaultAction::Throw;
};

/**
 * Parse an injection spec. Empty input yields nullopt (no injection);
 * malformed input is a fatal() diagnostic.
 */
std::optional<FaultInjection> parseFaultSpec(std::string_view spec);

/** Injection from the QZ_FAULT_INJECT environment variable, if set. */
std::optional<FaultInjection> faultInjectionFromEnv();

/** Throw the exception type matching @p kind (injection execution). */
[[noreturn]] void throwInjectedFault(const FaultInjection &inject);

/**
 * Canonical human-readable identity of one evaluation cell:
 * "WORKLOAD/VARIANT/DATASET#pairs=N;..." covering every RunOptions
 * field that changes the simulated outcome, plus any dataset params
 * (kernel workloads). @p workload is the registry display name.
 */
std::string cellKey(std::string_view workload,
                    const genomics::PairDataset &dataset,
                    const RunOptions &options);

/** Legacy overload keyed by the AlgoKind's registered name. */
std::string cellKey(AlgoKind kind,
                    const genomics::PairDataset &dataset,
                    const RunOptions &options);

/**
 * cellKey() over a streaming source. Byte-identical to the dataset
 * overload for any source that yields the same pairs — checkpoints
 * written by in-RAM sweeps resume store-backed ones and vice versa.
 */
std::string cellKey(std::string_view workload,
                    const genomics::PairSource &source,
                    const RunOptions &options);

/**
 * Stable 64-bit FNV-1a digest (16 hex chars) of the full cell
 * identity: the key string (which covers dataset params), every
 * dataset pair's content, and all simulated-system parameters. Two
 * cells with equal hashes produce bitwise-identical RunResults, which
 * is what makes checkpoint reuse sound (cells are pure functions of
 * their identity). The hash is shard-invariant: QZ_BENCH_SHARD
 * changes which process runs a cell, never the cell's identity.
 */
std::string cellHash(std::string_view workload,
                     const genomics::PairDataset &dataset,
                     const RunOptions &options);

/** Legacy overload keyed by the AlgoKind's registered name. */
std::string cellHash(AlgoKind kind,
                     const genomics::PairDataset &dataset,
                     const RunOptions &options);

/**
 * cellHash() over a streaming source (pairs are streamed through the
 * digest at bounded memory). Byte-identical to the dataset overload
 * whenever the source yields the same pairs.
 */
std::string cellHash(std::string_view workload,
                     const genomics::PairSource &source,
                     const RunOptions &options);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_FAULTS_HPP
