/**
 * @file
 * Banded affine-gap global alignment (Smith-Waterman-Gotoh recurrence,
 * ksw2-style) — the paper's classic-DP use case 3.
 *
 * Scoring: match +2, mismatch -4, gap open 4, gap extend 2 (ksw2
 * defaults). The band (31 cells) follows the straight line between the
 * table corners, the standard banded heuristic (Section II-A): all
 * variants compute the identical banded optimum, which may differ from
 * the unbanded one — that is the documented trade-off of banded
 * alignment.
 *
 * Computation runs along anti-diagonals (the ksw2 extz formulation):
 * E/F/H dependencies all land in the previous two diagonals, so the
 * band vectorizes with unit-stride accesses only.
 */
#ifndef QUETZAL_ALGOS_SWG_HPP
#define QUETZAL_ALGOS_SWG_HPP

#include <string_view>

#include "algos/variant.hpp"
#include "algos/wfa.hpp" // AlignResult
#include "isa/vectorunit.hpp"
#include "quetzal/qzunit.hpp"

namespace quetzal::algos {

/** SWG scoring parameters (ksw2 defaults). */
struct SwgParams
{
    std::int32_t match = 2;
    std::int32_t mismatch = -4;
    std::int32_t gapOpen = 4;   //!< q: opening costs -(q + e)
    std::int32_t gapExtend = 2; //!< e: each extension costs -e
    int bandHalf = 15;          //!< band covers center +/- bandHalf

    /**
     * Route the rolling band rows through the QBUFFERs (the literal
     * Fig. 7 flow) in the Qz variants. With the realistic store-buffer
     * model the forwarding stalls it targets barely exist, so this
     * measures about par with the plain vector path; it is kept as a
     * faithful, testable implementation of the paper's mechanism.
     */
    bool qbufferRows = false;

    /**
     * Adaptive banding (the "adaptive banded SW" evolution the paper
     * tracks in Section II-A/II-D): instead of following the straight
     * corner-to-corner line, the band recenters each anti-diagonal on
     * the best-scoring cell of the previous one, following indel
     * drift that a static band would lose.
     */
    bool adaptiveBand = false;
};

/** Result of a banded SWG alignment. */
struct SwgResult
{
    std::int64_t score = 0; //!< banded-optimal alignment score
    Cigar cigar;
};

/**
 * Banded global alignment of @p pattern against @p text.
 * Variant semantics match nwAlign (QzC behaves as Qz).
 */
SwgResult swgAlign(Variant variant, std::string_view pattern,
                   std::string_view text,
                   const SwgParams &params = SwgParams{},
                   isa::VectorUnit *vpu = nullptr,
                   accel::QzUnit *qz = nullptr, bool traceback = true);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_SWG_HPP
