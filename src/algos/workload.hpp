/**
 * @file
 * The workload registry: one name-addressable catalog of everything
 * the evaluation matrix can run — the genomics algorithms (WFA, BiWFA,
 * SneakySnake, NW, banded SW, the SS+WFA pipeline) and the Fig. 15b
 * other-domain kernels (histogram, SpMV) — behind a single Workload
 * interface.
 *
 * Workloads self-register at static-initialization time via
 * WorkloadRegistrar, so cell dispatch everywhere (runAlgorithm, the
 * batch engine, the bench binaries, the CLI tools) is a registry
 * lookup instead of a switch ladder, and every workload flows through
 * BatchRunner with the full RunResult contract (cycles, stall
 * breakdown, memory traffic, outputs_match) plus threads, JSON,
 * checkpoint/resume, retries, and fault isolation for free.
 *
 * Registration happens during static init (single-threaded) and the
 * registry is read-only afterwards, so lookups need no locking.
 */
#ifndef QUETZAL_ALGOS_WORKLOAD_HPP
#define QUETZAL_ALGOS_WORKLOAD_HPP

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "algos/runner.hpp"
#include "isa/vectorunit.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

namespace quetzal::genomics {
class PairSource;
}

namespace quetzal::algos {

/**
 * One workload of the evaluation matrix. Implementations are
 * stateless: run() builds a fresh simulated core per call, so cells
 * are pure functions of (dataset, options) and the batch engine can
 * execute them on any worker in any order.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Display name matching the paper (the single source of truth). */
    virtual std::string_view name() const = 0;

    /** Legacy enum identity; nullopt for non-AlgoKind workloads. */
    virtual std::optional<AlgoKind> kind() const { return std::nullopt; }

    /** Timed variants this workload supports (default: all four). */
    virtual std::vector<Variant> variants() const;

    /** Names accepted by makeDataset() (default sweep, in order). */
    virtual std::vector<std::string> datasetNames() const = 0;

    /** Materialize the dataset named @p dataset at @p scale. */
    virtual genomics::PairDataset
    makeDataset(std::string_view dataset, double scale) const = 0;

    /** Run one (variant, system, dataset) cell on a fresh core. */
    virtual RunResult run(const genomics::PairDataset &dataset,
                          const RunOptions &options) const = 0;

    /**
     * Run one cell streaming from @p source — bounded-memory pair
     * intake (docs/STORE.md). The genomics workloads iterate the
     * source in batches and never materialize it; the default routes
     * through run() via the source's zero-copy backing dataset when
     * one exists (kernel workloads ignore pairs entirely, so the
     * default is exact for them). Results are byte-identical to
     * run() over the materialized source — the invariant the batch
     * engine and the store tests rely on.
     */
    virtual RunResult runStream(genomics::PairSource &source,
                                const RunOptions &options) const;

    /** True when variants() contains @p variant. */
    bool supports(Variant variant) const;
};

/**
 * The process-wide workload catalog. add() is called from
 * WorkloadRegistrar statics; duplicate names are a fatal() diagnostic
 * so two workloads can never shadow each other.
 */
class WorkloadRegistry
{
  public:
    static WorkloadRegistry &instance();

    /** Register @p workload; returns it for registrar chaining. */
    const Workload &add(std::unique_ptr<Workload> workload);

    /**
     * Look up by name — exact match first, then case-insensitive.
     * nullptr on a miss (byName()/workloadByName() for the throwing
     * flavor).
     */
    const Workload *find(std::string_view name) const;

    /** find(), but a miss is fatal() listing every valid name. */
    const Workload &byName(std::string_view name) const;

    /** The workload whose kind() is @p kind; fatal when unmapped. */
    const Workload &byKind(AlgoKind kind) const;

    /** Every registered workload, sorted by name (deterministic). */
    std::vector<const Workload *> all() const;

  private:
    WorkloadRegistry() = default;
    std::vector<std::unique_ptr<Workload>> workloads_;
};

/** Registers a workload at static-initialization time. */
struct WorkloadRegistrar
{
    explicit WorkloadRegistrar(std::unique_ptr<Workload> workload)
    {
        WorkloadRegistry::instance().add(std::move(workload));
    }
};

/** Registry lookup by display name; fatal() lists valid names on a miss. */
const Workload &workloadByName(std::string_view name);

/** Registry lookup for a legacy AlgoKind. */
const Workload &workloadFor(AlgoKind kind);

/**
 * Human-readable catalog (for --list / QZ_BENCH_LIST=1): one line per
 * workload with its supported variants and default datasets.
 */
std::string workloadListing();

/**
 * A fresh simulated core plus the ISA facades a workload needs —
 * the per-cell rig every Workload::run() builds (ownership, not
 * sharing: see docs/SIMULATOR.md, thread-safety contract).
 */
struct WorkloadCore
{
    sim::SimContext ctx;
    isa::VectorUnit vpu;
    std::optional<accel::QzUnit> qz;

    explicit WorkloadCore(const sim::SystemParams &params)
        : ctx(params), vpu(ctx.pipeline())
    {
        if (params.quetzal.present)
            qz.emplace(vpu, params.quetzal);
    }

    accel::QzUnit *qzPtr() { return qz ? &*qz : nullptr; }
};

/**
 * The system parameters a cell actually simulates: options.system,
 * upgraded to a QUETZAL-equipped core when the variant needs one.
 */
sim::SystemParams systemFor(const RunOptions &options);

/** Copy the core's cycle/instruction/memory/stall counters into @p out. */
void harvestCore(RunResult &out, WorkloadCore &core);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_WORKLOAD_HPP
