#include "algos/sam.hpp"

#include "common/format.hpp"
#include "common/logging.hpp"

namespace quetzal::algos {

std::string
toSamCigar(const Cigar &cigar, bool extended)
{
    if (cigar.ops.empty())
        return "*";
    auto samOp = [extended](char op) {
        switch (op) {
          case 'M':
            return extended ? '=' : 'M';
          case 'X':
            return extended ? 'X' : 'M';
          case 'I':
            // Internal 'I' consumes text (reference): SAM deletion.
            return 'D';
          case 'D':
            // Internal 'D' consumes pattern (query): SAM insertion.
            return 'I';
          default:
            fatal("unknown CIGAR op '{}'", op);
        }
    };
    std::string out;
    std::size_t i = 0;
    while (i < cigar.ops.size()) {
        const char mapped = samOp(cigar.ops[i]);
        std::size_t j = i;
        while (j < cigar.ops.size() && samOp(cigar.ops[j]) == mapped)
            ++j;
        out += qformat("{}{}", j - i, mapped);
        i = j;
    }
    return out;
}

void
writeSamHeader(std::ostream &out, std::string_view refName,
               std::size_t refLength)
{
    out << "@HD\tVN:1.6\tSO:unknown\n"
        << "@SQ\tSN:" << refName << "\tLN:" << refLength << '\n'
        << "@PG\tID:quetzal\tPN:quetzal-sim\tVN:1.0\n";
}

void
writeSamRecord(std::ostream &out, const SamRecord &record)
{
    fatal_if(record.qname.empty(), "SAM record needs a query name");
    out << record.qname << "\t0\t" << record.rname << '\t'
        << record.pos << '\t' << record.mapq << '\t' << record.cigar
        << "\t*\t0\t0\t" << record.seq << "\t*\n";
}

} // namespace quetzal::algos
