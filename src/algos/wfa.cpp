#include "algos/wfa.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <vector>

#include "common/logging.hpp"

namespace quetzal::algos {

namespace {

/** Trivial alignments against an empty side. */
bool
trivialAlign(std::string_view pattern, std::string_view text,
             bool traceback, AlignResult &out)
{
    if (!pattern.empty() && !text.empty())
        return false;
    out = AlignResult{};
    if (pattern.empty() && text.empty())
        return true;
    if (pattern.empty()) {
        out.score = static_cast<std::int64_t>(text.size());
        if (traceback)
            out.cigar.append('I', text.size());
    } else {
        out.score = static_cast<std::int64_t>(pattern.size());
        if (traceback)
            out.cigar.append('D', pattern.size());
    }
    return true;
}

/** True when wave @p w completes the alignment. */
bool
reachedEnd(const Wave &w, int kEnd, std::int64_t n)
{
    return w.contains(kEnd) && w.at(kEnd) >= n;
}

/** Diagonal range of wave @p s for an m x n problem. */
void
waveRange(std::int64_t s, std::int64_t m, std::int64_t n, int &lo,
          int &hi)
{
    lo = static_cast<int>(std::max(-m, -s));
    hi = static_cast<int>(std::min(n, s));
}

/** Recover the CIGAR from the full wavefront table. */
Cigar
traceback(WfaEngine &engine, const std::vector<Wave> &waves,
          std::int64_t score, std::int64_t m, std::int64_t n)
{
    Cigar rev;
    int k = static_cast<int>(n - m);
    std::int32_t j = static_cast<std::int32_t>(n);
    for (std::int64_t s = score; s > 0; --s) {
        const Wave &prev = waves[static_cast<std::size_t>(s - 1)];
        engine.chargeTracebackHop(prev.ptr(k - 1), prev.ptr(k),
                                  prev.ptr(k + 1));
        const std::int32_t ins = prev.at(k - 1) + 1;
        const std::int32_t sub = prev.at(k) + 1;
        const std::int32_t del = prev.at(k + 1);
        const std::int32_t jbase = std::max(ins, std::max(sub, del));
        panic_if_not(jbase > kOffNone / 2,
                     "traceback: no valid predecessor at s={}, k={}", s,
                     k);
        const std::int32_t matches = j - jbase;
        panic_if_not(matches >= 0,
                     "traceback: negative match run at s={}, k={}", s, k);
        rev.append('M', static_cast<std::size_t>(matches));
        engine.chargeTracebackRun(static_cast<std::size_t>(matches));
        if (jbase == sub) {
            rev.append('X');
            j = jbase - 1;
        } else if (jbase == ins) {
            rev.append('I');
            k -= 1;
            j = jbase - 1;
        } else {
            rev.append('D');
            k += 1;
            j = jbase;
        }
    }
    panic_if_not(k == 0, "traceback did not land on diagonal 0");
    panic_if_not(j >= 0, "traceback overshot the origin");
    rev.append('M', static_cast<std::size_t>(j));
    engine.chargeTracebackRun(static_cast<std::size_t>(j));
    std::reverse(rev.ops.begin(), rev.ops.end());
    return rev;
}

/**
 * Wavefront-reduction: shrink [lo, hi] by dropping edge diagonals
 * whose anti-diagonal progress (2*offset - k) lags the best progress
 * by more than maxLag. Returns the trimmed bounds.
 */
void
pruneWave(WfaEngine &engine, const Wave &wave, std::int32_t maxLag,
          int &lo, int &hi)
{
    std::int64_t best = std::numeric_limits<std::int64_t>::min();
    for (int k = lo; k <= hi; ++k) {
        const std::int32_t off = wave.at(k);
        if (off == kOffNone)
            continue;
        best = std::max<std::int64_t>(best, 2 * std::int64_t{off} - k);
    }
    if (best == std::numeric_limits<std::int64_t>::min())
        return;
    auto lags = [&](int k) {
        const std::int32_t off = wave.at(k);
        return off == kOffNone ||
               2 * std::int64_t{off} - k + maxLag < best;
    };
    int trimmed = 0;
    while (lo < hi && lags(lo)) {
        ++lo;
        ++trimmed;
    }
    while (hi > lo && lags(hi)) {
        --hi;
        ++trimmed;
    }
    // The scan is a cheap linear pass over the wavefront row.
    engine.chargeTracebackRun(
        static_cast<std::size_t>((hi - lo + 1) + trimmed) / 8);
}

/** Report a ceiling breached even by the pruned retry and throw. */
[[noreturn]] void
budgetExhausted(const WfaEngine &engine, std::int64_t m, std::int64_t n)
{
    const std::string msg = qformat(
        "resource budget exhausted even after pruned retry "
        "(pair {}x{}: {} steps / ceiling {}, {} wave bytes / "
        "ceiling {})",
        m, n, engine.stepsUsed(), engine.budget().maxSteps,
        engine.waveBytesUsed(), engine.budget().maxWaveBytes);
    std::fputs(("fatal: " + msg + "\n").c_str(), stderr);
    throw ResourceError(msg);
}

} // namespace

AlignResult
wfaAlign(WfaEngine &engine, std::string_view pattern,
         std::string_view text, bool doTraceback,
         genomics::ElementSize esize, const WfaHeuristic &heuristic)
{
    AlignResult result;
    if (trivialAlign(pattern, text, doTraceback, result))
        return result;

    const auto m = static_cast<std::int64_t>(pattern.size());
    const auto n = static_cast<std::int64_t>(text.size());
    const int kEnd = static_cast<int>(n - m);

    // One full wavefront pass under @p heur. Returns the score, or
    // nullopt when the engine's resource budget was breached (the
    // watchdog path; retained waves/score are then meaningless).
    std::vector<Wave> waves;
    auto attempt =
        [&](const WfaHeuristic &heur) -> std::optional<std::int64_t> {
        engine.begin(pattern, text, esize); // resets usage counters
        waves.clear();
        waves.emplace_back(0, 0);
        waves.back().set(0, 0);
        engine.noteWaveAlloc(1);
        engine.extend(waves.back(), Dir::Fwd);

        std::int64_t s = 0;
        int curLo = 0, curHi = 0;
        while (!reachedEnd(waves.back(), kEnd, n)) {
            panic_if_not(s <= m + n, "WFA exceeded the m+n score bound");
            engine.noteStep();
            if (engine.budgetExceeded())
                return std::nullopt;
            int lo, hi;
            waveRange(s + 1, m, n, lo, hi);
            if (heur.enabled()) {
                // Grow from the (possibly pruned) previous bounds only.
                lo = std::max(lo, curLo - 1);
                hi = std::min(hi, curHi + 1);
            }
            waves.emplace_back(lo, hi);
            engine.noteWaveAlloc(static_cast<std::size_t>(hi - lo + 1));
            engine.nextWave(waves[static_cast<std::size_t>(s)],
                            waves.back());
            engine.extend(waves.back(), Dir::Fwd);
            curLo = lo;
            curHi = hi;
            if (heur.enabled())
                pruneWave(engine, waves.back(), heur.maxLag, curLo,
                          curHi);
            ++s;
        }
        return s;
    };

    std::optional<std::int64_t> score = attempt(heuristic);
    if (!score) {
        // Watchdog fired: degrade to adaptive pruning and retry once.
        // When the caller's own pruning was already at least as tight
        // as the fallback, a retry cannot shrink the work — give up.
        WfaHeuristic fallback;
        fallback.maxLag = engine.budget().fallbackLag;
        if (heuristic.enabled() && heuristic.maxLag <= fallback.maxLag)
            budgetExhausted(engine, m, n);
        result.degraded = true;
        // The retry lifts the step ceiling: steps equal the alignment
        // score, which pruning cannot reduce — the lag bound caps the
        // per-step work and memory instead, so total work is linear.
        // The wave-memory ceiling stays enforced; pruned waves are
        // narrow, so a second breach means the pair is hopeless.
        const ResourceBudget saved = engine.budget();
        ResourceBudget relaxed = saved;
        relaxed.maxSteps = 0;
        engine.setBudget(relaxed);
        score = attempt(fallback);
        engine.setBudget(saved);
        if (!score)
            budgetExhausted(engine, m, n);
    }

    result.score = *score;
    if (doTraceback)
        result.cigar = traceback(engine, waves, *score, m, n);
    return result;
}

std::int64_t
wfaScore(WfaEngine &engine, std::string_view pattern,
         std::string_view text, genomics::ElementSize esize)
{
    AlignResult trivial;
    if (trivialAlign(pattern, text, false, trivial))
        return trivial.score;

    const auto m = static_cast<std::int64_t>(pattern.size());
    const auto n = static_cast<std::int64_t>(text.size());
    const int kEnd = static_cast<int>(n - m);

    engine.begin(pattern, text, esize);

    Wave cur(0, 0);
    cur.set(0, 0);
    engine.extend(cur, Dir::Fwd);

    std::int64_t s = 0;
    Wave next;
    while (!reachedEnd(cur, kEnd, n)) {
        panic_if_not(s <= m + n, "WFA exceeded the m+n score bound");
        engine.noteStep();
        // Score-only WFA has no pruned fallback (its callers need the
        // exact score), so a breach is terminal rather than degraded.
        if (engine.budgetExceeded())
            budgetExhausted(engine, m, n);
        int lo, hi;
        waveRange(s + 1, m, n, lo, hi);
        next.reset(lo, hi);
        engine.nextWave(cur, next);
        engine.extend(next, Dir::Fwd);
        std::swap(cur, next);
        ++s;
    }
    return s;
}

std::uint64_t
wfaCellCount(std::int64_t score)
{
    // Wave s holds up to 2s+1 diagonals: sum over s gives (s+1)^2.
    const auto s = static_cast<std::uint64_t>(score);
    return (s + 1) * (s + 1);
}

} // namespace quetzal::algos
