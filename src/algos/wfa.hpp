/**
 * @file
 * Wavefront Alignment (WFA) for unit (edit) penalties.
 *
 * Computes the optimal edit distance and alignment in O(n + s^2)
 * expected work, where s is the score — the modern DP formulation the
 * paper accelerates (Section II-B, Fig. 1b). The control structure is
 * variant-independent; the hot kernels run through a WfaEngine.
 */
#ifndef QUETZAL_ALGOS_WFA_HPP
#define QUETZAL_ALGOS_WFA_HPP

#include <cstdint>
#include <string_view>

#include "algos/cigar.hpp"
#include "algos/wfa_engine.hpp"

namespace quetzal::algos {

/**
 * Optional wavefront-reduction heuristic (the "adaptive" mode of the
 * WFA2 library): diagonals whose anti-diagonal progress lags the
 * best by more than maxLag are trimmed from the wavefront edges.
 * Trades guaranteed optimality for less wavefront work — exactly the
 * heuristic/exact split the paper discusses for banded methods.
 */
struct WfaHeuristic
{
    /** <= 0 disables pruning (exact WFA). */
    std::int32_t maxLag = 0;

    bool enabled() const { return maxLag > 0; }
};

/** Alignment outcome. */
struct AlignResult
{
    std::int64_t score = 0; //!< optimal edit distance
    Cigar cigar;            //!< empty when traceback was not requested

    /**
     * True when a resource budget (engine.setBudget) forced the
     * wavefront loop to fall back to adaptive pruning, so the score
     * is a valid alignment but no longer guaranteed optimal.
     */
    bool degraded = false;
};

/**
 * Align @p pattern to @p text with the given engine.
 *
 * @param traceback when true, all wavefronts are retained and the
 *        optimal CIGAR is recovered (the paper includes traceback in
 *        every measurement).
 * @param esize element encoding for QUETZAL variants (Bits2 for
 *        DNA/RNA, Bits8 for proteins).
 *
 * When the engine carries a ResourceBudget and the exact pass
 * breaches it, the pair restarts once with the budget's fallbackLag
 * pruning heuristic and the result is flagged degraded; a second
 * breach raises ResourceError (see docs/ROBUSTNESS.md).
 */
AlignResult wfaAlign(WfaEngine &engine, std::string_view pattern,
                     std::string_view text, bool traceback = true,
                     genomics::ElementSize esize =
                         genomics::ElementSize::Bits2,
                     const WfaHeuristic &heuristic = WfaHeuristic{});

/** Score-only WFA with O(s) rolling wavefront storage. */
std::int64_t wfaScore(WfaEngine &engine, std::string_view pattern,
                      std::string_view text,
                      genomics::ElementSize esize =
                          genomics::ElementSize::Bits2);

/**
 * Number of logical DP cells WFA evaluates for a score-@p s alignment
 * (wavefront cells), used by the GCUPS accounting.
 */
std::uint64_t wfaCellCount(std::int64_t score);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_WFA_HPP
