#include "algos/workload.hpp"

#include <algorithm>
#include <cctype>

#include "common/logging.hpp"
#include "genomics/pairsource.hpp"

namespace quetzal::algos {

namespace detail {

// Defined in runner.cpp / kernel_workloads.cpp. Static-archive members
// are only linked into a binary when a symbol they define is
// referenced; calling these no-op anchors from instance() keeps the
// registrar translation units — and their static-init registrations —
// in every binary that touches the registry.
void anchorAlgoWorkloads();
void anchorKernelWorkloads();

} // namespace detail

std::vector<Variant>
Workload::variants() const
{
    return {Variant::Base, Variant::Vec, Variant::Qz, Variant::QzC};
}

RunResult
Workload::runStream(genomics::PairSource &source,
                    const RunOptions &options) const
{
    // Zero-copy when the source is a full in-RAM dataset view (the
    // kernel workloads and any legacy dataset-backed cell); a true
    // streaming source is materialized once. The genomics workloads
    // override this with a batched loop that never materializes.
    if (const genomics::PairDataset *dataset = source.backing())
        return run(*dataset, options);
    return run(source.materialize(), options);
}

bool
Workload::supports(Variant variant) const
{
    const auto list = variants();
    return std::find(list.begin(), list.end(), variant) != list.end();
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    detail::anchorAlgoWorkloads();
    detail::anchorKernelWorkloads();
    static WorkloadRegistry registry;
    return registry;
}

const Workload &
WorkloadRegistry::add(std::unique_ptr<Workload> workload)
{
    panic_if_not(workload != nullptr, "registering a null workload");
    for (const auto &existing : workloads_)
        fatal_if(existing->name() == workload->name(),
                 "workload '{}' registered twice", workload->name());
    workloads_.push_back(std::move(workload));
    return *workloads_.back();
}

namespace {

bool
sameNameFolded(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

} // namespace

const Workload *
WorkloadRegistry::find(std::string_view name) const
{
    for (const auto &workload : workloads_)
        if (workload->name() == name)
            return workload.get();
    for (const auto &workload : workloads_)
        if (sameNameFolded(workload->name(), name))
            return workload.get();
    return nullptr;
}

const Workload &
WorkloadRegistry::byName(std::string_view name) const
{
    if (const Workload *workload = find(name))
        return *workload;
    std::string valid;
    for (const Workload *workload : all()) {
        if (!valid.empty())
            valid += ", ";
        valid += workload->name();
    }
    fatal("unknown workload '{}' (valid names: {})", name, valid);
}

const Workload &
WorkloadRegistry::byKind(AlgoKind kind) const
{
    for (const auto &workload : workloads_)
        if (workload->kind() == kind)
            return *workload;
    panic("no workload registered for AlgoKind {}",
          static_cast<int>(kind));
}

std::vector<const Workload *>
WorkloadRegistry::all() const
{
    std::vector<const Workload *> out;
    out.reserve(workloads_.size());
    for (const auto &workload : workloads_)
        out.push_back(workload.get());
    // Registration order depends on link order across translation
    // units; sort so enumeration is deterministic everywhere.
    std::sort(out.begin(), out.end(),
              [](const Workload *a, const Workload *b) {
                  return a->name() < b->name();
              });
    return out;
}

const Workload &
workloadByName(std::string_view name)
{
    return WorkloadRegistry::instance().byName(name);
}

const Workload &
workloadFor(AlgoKind kind)
{
    return WorkloadRegistry::instance().byKind(kind);
}

std::string
workloadListing()
{
    std::string out = "registered workloads:\n";
    for (const Workload *workload : WorkloadRegistry::instance().all()) {
        out += qformat("  {}\n    variants:", workload->name());
        for (const Variant variant : workload->variants())
            out += qformat(" {}", variantName(variant));
        out += "\n    datasets:";
        for (const std::string &dataset : workload->datasetNames())
            out += qformat(" {}", dataset);
        out += "\n";
    }
    return out;
}

sim::SystemParams
systemFor(const RunOptions &options)
{
    sim::SystemParams params = options.system;
    if (needsQuetzal(options.variant) && !params.quetzal.present)
        params = sim::SystemParams::withQuetzal();
    return params;
}

void
harvestCore(RunResult &out, WorkloadCore &core)
{
    out.cycles = core.ctx.pipeline().totalCycles();
    out.instructions = core.ctx.pipeline().instructions();
    out.memRequests = core.ctx.mem().totalRequests();
    out.dramBytes = core.ctx.mem().dramBytes();
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(sim::StallKind::NumKinds); ++k)
        out.stalls[k] = core.ctx.pipeline().stallCycles(
            static_cast<sim::StallKind>(k));
}

} // namespace quetzal::algos
