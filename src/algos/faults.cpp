#include "algos/faults.hpp"

#include <bit>
#include <cstdlib>

#include "common/logging.hpp"
#include "genomics/pairsource.hpp"

namespace quetzal::algos {

std::string_view
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::Fatal:
        return "fatal";
      case FailureKind::Panic:
        return "panic";
      case FailureKind::Transient:
        return "transient";
      case FailureKind::Resource:
        return "resource";
      case FailureKind::Unknown:
        return "unknown";
    }
    return "?";
}

std::optional<FailureKind>
failureKindFromName(std::string_view name)
{
    for (FailureKind kind :
         {FailureKind::Fatal, FailureKind::Panic, FailureKind::Transient,
          FailureKind::Resource, FailureKind::Unknown})
        if (name == failureKindName(kind))
            return kind;
    return std::nullopt;
}

FailureKind
classifyException(std::exception_ptr error)
{
    if (!error)
        return FailureKind::Unknown;
    try {
        std::rethrow_exception(error);
    } catch (const TransientError &) {
        return FailureKind::Transient;
    } catch (const ResourceError &) {
        // Before FatalError: ResourceError derives from it.
        return FailureKind::Resource;
    } catch (const FatalError &) {
        return FailureKind::Fatal;
    } catch (const PanicError &) {
        return FailureKind::Panic;
    } catch (...) {
        return FailureKind::Unknown;
    }
}

std::string
exceptionMessage(std::exception_ptr error)
{
    if (!error)
        return "(no exception)";
    try {
        std::rethrow_exception(error);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "(non-standard exception)";
    }
}

std::string_view
faultActionName(FaultAction action)
{
    switch (action) {
      case FaultAction::Throw:
        return "throw";
      case FaultAction::Crash:
        return "crash";
      case FaultAction::Hang:
        return "hang";
    }
    return "?";
}

std::optional<FaultInjection>
parseFaultSpec(std::string_view spec)
{
    if (spec.empty())
        return std::nullopt;

    auto nextField = [&spec]() -> std::string_view {
        const std::size_t colon = spec.find(':');
        std::string_view field = spec.substr(0, colon);
        spec = colon == std::string_view::npos
                   ? std::string_view{}
                   : spec.substr(colon + 1);
        return field;
    };

    const std::string cellField(nextField());
    const std::string kindField(nextField());
    const std::string timesField(nextField());
    fatal_if(!spec.empty(),
             "fault spec has trailing fields after ':{}' "
             "(want CELL:KIND[:TIMES])",
             timesField);

    char *end = nullptr;
    const unsigned long long cell =
        std::strtoull(cellField.c_str(), &end, 10);
    fatal_if(cellField.empty() || *end != '\0',
             "fault spec cell '{}' is not a non-negative integer",
             cellField);

    // "crash" and "hang" are worker-process-level kinds: they pick a
    // FaultAction rather than an exception type. The FailureKind they
    // carry is what the service reports when recovery is exhausted
    // (Panic for repeated deaths, Resource for repeated timeouts).
    FaultAction action = FaultAction::Throw;
    std::optional<FailureKind> kind;
    if (kindField == "crash") {
        action = FaultAction::Crash;
        kind = FailureKind::Panic;
    } else if (kindField == "hang") {
        action = FaultAction::Hang;
        kind = FailureKind::Resource;
    } else {
        kind = failureKindFromName(kindField);
    }
    fatal_if(!kind,
             "fault spec kind '{}' unknown (want "
             "fatal|panic|transient|resource|unknown|crash|hang)",
             kindField);

    unsigned long long times = 1;
    if (!timesField.empty()) {
        times = std::strtoull(timesField.c_str(), &end, 10);
        fatal_if(*end != '\0' || times == 0,
                 "fault spec times '{}' is not a positive integer",
                 timesField);
    }

    FaultInjection inject;
    inject.cell = static_cast<std::size_t>(cell);
    inject.kind = *kind;
    inject.times = static_cast<unsigned>(times);
    inject.action = action;
    return inject;
}

std::optional<FaultInjection>
faultInjectionFromEnv()
{
    const char *env = std::getenv("QZ_FAULT_INJECT");
    if (!env || !*env)
        return std::nullopt;
    return parseFaultSpec(env);
}

void
throwInjectedFault(const FaultInjection &inject)
{
    const std::string msg =
        qformat("injected {} fault (cell {})",
                failureKindName(inject.kind), inject.cell);
    switch (inject.kind) {
      case FailureKind::Fatal:
        throw FatalError(msg);
      case FailureKind::Panic:
        throw PanicError(msg);
      case FailureKind::Transient:
        throw TransientError(msg);
      case FailureKind::Resource:
        throw ResourceError(msg);
      case FailureKind::Unknown:
        throw std::runtime_error(msg);
    }
    throw std::runtime_error(msg); // unreachable
}

namespace {

/** FNV-1a 64-bit streaming hasher. */
class Fnv
{
  public:
    void
    mix(std::uint64_t value)
    {
        for (int byte = 0; byte < 8; ++byte) {
            hash_ ^= (value >> (byte * 8)) & 0xff;
            hash_ *= 0x100000001b3ULL;
        }
    }

    void
    mix(std::string_view text)
    {
        mix(static_cast<std::uint64_t>(text.size()));
        for (const char c : text) {
            hash_ ^= static_cast<unsigned char>(c);
            hash_ *= 0x100000001b3ULL;
        }
    }

    void mix(double value) { mix(std::bit_cast<std::uint64_t>(value)); }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

void
mixSystem(Fnv &fnv, const sim::SystemParams &sys)
{
    fnv.mix(sys.clockGhz);
    fnv.mix(std::uint64_t{sys.cores});
    for (const auto *cache : {&sys.l1d, &sys.l2}) {
        fnv.mix(cache->sizeBytes);
        fnv.mix(std::uint64_t{cache->associativity});
        fnv.mix(std::uint64_t{cache->lineBytes});
        fnv.mix(std::uint64_t{cache->loadToUse});
    }
    fnv.mix(std::uint64_t{sys.prefetcher.enabled});
    fnv.mix(std::uint64_t{sys.prefetcher.tableEntries});
    fnv.mix(std::uint64_t{sys.prefetcher.degree});
    fnv.mix(std::uint64_t{sys.prefetcher.trainThreshold});
    fnv.mix(std::uint64_t{sys.dram.latencyCycles});
    fnv.mix(sys.dram.peakBytesPerCycle);
    const auto &core = sys.core;
    for (const unsigned field :
         {core.issueWidth, core.vectorPipes, core.scalarPipes,
          core.agus, core.robEntries, core.lsqEntries, core.vlenBits,
          core.scalarAluLatency, core.vectorAluLatency,
          core.vectorCmpLatency, core.predOpLatency,
          core.reduceLatency, core.branchLatency,
          core.gatherMinLatency})
        fnv.mix(std::uint64_t{field});
    fnv.mix(std::uint64_t{sys.quetzal.present});
    fnv.mix(std::uint64_t{sys.quetzal.readPorts});
    fnv.mix(sys.quetzal.bufferBytes);
    fnv.mix(std::uint64_t{sys.quetzal.banks});
}

std::string
hexDigest(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

/**
 * Shared key builder: the dataset and PairSource overloads must stay
 * byte-identical (checkpoints interoperate across intake modes), so
 * both delegate here.
 */
std::string
cellKeyImpl(std::string_view workload, std::string_view dataset,
            std::size_t pairCount,
            const std::vector<std::pair<std::string, std::uint64_t>>
                &params,
            const RunOptions &options)
{
    std::string key = qformat(
        "{}/{}/{}#pairs={};maxPairs={};maxLen={};alphabet={};"
        "ssThreshold={};traceback={};verify={};budget={},{},{}",
        workload, variantName(options.variant), dataset, pairCount,
        options.maxPairs, options.maxLen,
        genomics::name(options.alphabet), options.ssThreshold,
        options.traceback ? 1 : 0, options.verify ? 1 : 0,
        options.budget.maxWaveBytes, options.budget.maxSteps,
        options.budget.fallbackLag);
    if (!params.empty()) {
        key += ";params=";
        bool first = true;
        for (const auto &[name, value] : params) {
            key += qformat(first ? "{}:{}" : ",{}:{}", name, value);
            first = false;
        }
    }
    return key;
}

} // namespace

std::string
cellKey(std::string_view workload, const genomics::PairDataset &dataset,
        const RunOptions &options)
{
    return cellKeyImpl(workload, dataset.name, dataset.pairs.size(),
                       dataset.params, options);
}

std::string
cellKey(std::string_view workload,
        const genomics::PairSource &source, const RunOptions &options)
{
    const genomics::SourceInfo &info = source.info();
    return cellKeyImpl(workload, info.name, source.size(),
                       info.params, options);
}

std::string
cellKey(AlgoKind kind, const genomics::PairDataset &dataset,
        const RunOptions &options)
{
    return cellKey(algoName(kind), dataset, options);
}

std::string
cellHash(std::string_view workload, const genomics::PairDataset &dataset,
         const RunOptions &options)
{
    Fnv fnv;
    fnv.mix(cellKey(workload, dataset, options));
    // Dataset content: the key only names it, but resumed results are
    // only valid when the actual pairs are unchanged too. (Kernel
    // datasets carry no pairs; their content is fully determined by
    // the params already in the key.)
    fnv.mix(dataset.readLength);
    fnv.mix(dataset.errorRate);
    for (const auto &pair : dataset.pairs) {
        fnv.mix(pair.pattern);
        fnv.mix(pair.text);
        fnv.mix(static_cast<std::uint64_t>(pair.trueEdits));
    }
    mixSystem(fnv, options.system);
    return hexDigest(fnv.value());
}

std::string
cellHash(std::string_view workload,
         const genomics::PairSource &source, const RunOptions &options)
{
    Fnv fnv;
    fnv.mix(cellKey(workload, source, options));
    // Same mixing order as the dataset overload, but the pairs are
    // streamed through the digest at bounded memory.
    const genomics::SourceInfo &info = source.info();
    fnv.mix(info.readLength);
    fnv.mix(info.errorRate);
    auto cursor = source.fork();
    genomics::PairBatch batch;
    while (cursor->next(batch) > 0)
        for (const genomics::PairView &pair : batch.views()) {
            fnv.mix(pair.pattern);
            fnv.mix(pair.text);
            fnv.mix(static_cast<std::uint64_t>(pair.trueEdits));
        }
    mixSystem(fnv, options.system);
    return hexDigest(fnv.value());
}

std::string
cellHash(AlgoKind kind, const genomics::PairDataset &dataset,
         const RunOptions &options)
{
    return cellHash(algoName(kind), dataset, options);
}

} // namespace quetzal::algos
