/**
 * @file
 * Bidirectional WFA (BiWFA) for unit (edit) penalties.
 *
 * Runs forward and reverse wavefronts that meet in the middle
 * (Marco-Sola et al. 2023): the score pass keeps only O(s) rolling
 * wavefront state, and the full alignment is recovered by recursive
 * splitting at the meeting breakpoint — the property that lets BiWFA
 * handle long reads without the O(s^2) wavefront table.
 *
 * Reverse-direction extension runs over the same staged sequences via
 * index mirroring; the QUETZAL+C variant uses the count ALU's reverse
 * (leading-ones) mode for it.
 */
#ifndef QUETZAL_ALGOS_BIWFA_HPP
#define QUETZAL_ALGOS_BIWFA_HPP

#include <cstdint>
#include <string_view>

#include "algos/wfa.hpp"

namespace quetzal::algos {

/** Meeting point of the forward and reverse wavefronts. */
struct Breakpoint
{
    std::int64_t i = 0;      //!< pattern split position
    std::int64_t j = 0;      //!< text split position
    std::int64_t scoreF = 0; //!< forward edits at the meeting
    std::int64_t scoreR = 0; //!< reverse edits at the meeting
};

/**
 * Edit distance via bidirectional wavefronts with O(s) memory.
 * @param bp optional out-parameter receiving the meeting breakpoint.
 */
std::int64_t biwfaScore(WfaEngine &engine, std::string_view pattern,
                        std::string_view text,
                        genomics::ElementSize esize =
                            genomics::ElementSize::Bits2,
                        Breakpoint *bp = nullptr);

/**
 * Full BiWFA alignment: score pass, split at the breakpoint, recurse;
 * subproblems below the leaf threshold run plain WFA with traceback.
 */
AlignResult biwfaAlign(WfaEngine &engine, std::string_view pattern,
                       std::string_view text, bool traceback = true,
                       genomics::ElementSize esize =
                           genomics::ElementSize::Bits2);

} // namespace quetzal::algos

#endif // QUETZAL_ALGOS_BIWFA_HPP
