#include "algos/swg.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/logging.hpp"

namespace quetzal::algos {

using isa::addrOf;
using isa::Pred;
using isa::VReg;

namespace {

enum Site : std::uint64_t
{
    kSiteH1 = 0x400, //!< H previous diagonal (for E)
    kSiteH1b = 0x401, //!< H previous diagonal shifted (for F)
    kSiteE1 = 0x402,
    kSiteF1 = 0x403,
    kSiteH2 = 0x404,
    kSiteP = 0x405,
    kSiteT = 0x406,
    kSiteHS = 0x407, //!< stores
    kSiteTb = 0x408,
};

constexpr std::int32_t kNegInf =
    std::numeric_limits<std::int32_t>::min() / 4;
constexpr sim::Cycle kForwardPenalty = 6;

/** Banded, diagonal-major storage for one matrix (H, E, or F). */
class BandTable
{
  public:
    static constexpr int kPad = 4;

    BandTable(std::int64_t m, std::int64_t n, int bandHalf)
        : m_(m), n_(n), half_(bandHalf),
          stride_(2 * bandHalf + 1 + 2 * kPad)
    {
        data_.assign(static_cast<std::size_t>((m + n + 1) * stride_),
                     kNegInf);
    }

    std::int64_t center(std::int64_t d) const
    {
        if (!centers_.empty())
            return centers_[static_cast<std::size_t>(
                std::clamp<std::int64_t>(d, 0, m_ + n_))];
        return d * m_ / (m_ + n_);
    }

    /** Switch to adaptive banding: centers start on the static line. */
    void
    enableAdaptiveCenters()
    {
        centers_.resize(static_cast<std::size_t>(m_ + n_ + 1));
        for (std::int64_t d = 0; d <= m_ + n_; ++d)
            centers_[static_cast<std::size_t>(d)] = d * m_ / (m_ + n_);
    }

    /** Recenter diagonal @p d on row @p c (monotonic, clamped). */
    void
    recenter(std::int64_t d, std::int64_t c)
    {
        if (centers_.empty() || d > m_ + n_)
            return;
        const std::int64_t prev =
            centers_[static_cast<std::size_t>(d - 1)];
        // The band may shift by at most one row per diagonal (cells
        // only depend on the previous two diagonals).
        centers_[static_cast<std::size_t>(d)] =
            std::clamp<std::int64_t>(c, prev, prev + 1);
    }
    std::int64_t iMin(std::int64_t d) const
    {
        return std::max<std::int64_t>(0, d - n_);
    }
    std::int64_t iMax(std::int64_t d) const { return std::min(m_, d); }
    std::int64_t bandLo(std::int64_t d) const
    {
        return std::max(iMin(d), center(d) - half_);
    }
    std::int64_t bandHi(std::int64_t d) const
    {
        return std::min(iMax(d), center(d) + half_);
    }

    /** Value at (i, j); sentinel outside the padded band. */
    std::int32_t
    at(std::int64_t i, std::int64_t j) const
    {
        const std::int64_t d = i + j;
        if (d < 0 || d > m_ + n_)
            return kNegInf;
        const std::int64_t slot = i - bandLo(d) + kPad;
        if (slot < 0 || slot >= stride_)
            return kNegInf;
        return data_[static_cast<std::size_t>(d * stride_ + slot)];
    }

    void
    set(std::int64_t i, std::int64_t j, std::int32_t value)
    {
        const std::int64_t d = i + j;
        const std::int64_t slot = i - bandLo(d) + kPad;
        panic_if_not(slot >= 0 && slot < stride_,
                     "SWG band write outside storage at ({}, {})", i, j);
        data_[static_cast<std::size_t>(d * stride_ + slot)] = value;
    }

    /** Host pointer for diagonal @p d at row @p i (within padding). */
    std::int32_t *
    ptr(std::int64_t d, std::int64_t i)
    {
        const std::int64_t slot = i - bandLo(d) + kPad;
        panic_if_not(slot >= 0 && slot < stride_,
                     "SWG band pointer outside storage (d={}, i={})", d,
                     i);
        return data_.data() + d * stride_ + slot;
    }

    /**
     * Contiguous @p cnt -cell run starting at (i, d - i), or nullptr
     * when the diagonal or any slot of the run falls outside storage —
     * those reads must keep going through at()'s sentinel. In-storage
     * pad slots always hold kNegInf (set() only ever writes in-band
     * cells), so reading a run through this pointer is bit-identical
     * to cnt at() calls.
     */
    const std::int32_t *
    rowIfValid(std::int64_t d, std::int64_t i, std::int64_t cnt) const
    {
        if (d < 0 || d > m_ + n_)
            return nullptr;
        const std::int64_t slot = i - bandLo(d) + kPad;
        if (slot < 0 || slot + cnt > stride_)
            return nullptr;
        return data_.data() + d * stride_ + slot;
    }

    /** Mutable @p cnt -cell run; panics outside storage like set(). */
    std::int32_t *
    row(std::int64_t d, std::int64_t i, std::int64_t cnt)
    {
        const std::int64_t slot = i - bandLo(d) + kPad;
        panic_if_not(d >= 0 && d <= m_ + n_ && slot >= 0 &&
                         slot + cnt <= stride_,
                     "SWG band run outside storage (d={}, i={}, cnt={})",
                     d, i, cnt);
        return data_.data() + d * stride_ + slot;
    }

  private:
    std::int64_t m_, n_;
    int half_;
    std::int64_t stride_;
    std::vector<std::int32_t> data_;
    std::vector<std::int64_t> centers_; //!< adaptive band centers
};

struct Tables
{
    BandTable h, e, f;
    Tables(std::int64_t m, std::int64_t n, int half, bool adaptive)
        : h(m, n, half), e(m, n, half), f(m, n, half)
    {
        if (adaptive) {
            h.enableAdaptiveCenters();
            e.enableAdaptiveCenters();
            f.enableAdaptiveCenters();
        }
    }

    void
    recenter(std::int64_t d, std::int64_t c)
    {
        h.recenter(d, c);
        e.recenter(d, c);
        f.recenter(d, c);
    }
};

/**
 * Adaptive-band steering (the Suzuki-Kasahara rule): compare the
 * scores at the two band edges of diagonal @p d and shift the next
 * band one row toward the better edge (+1 means towards larger i).
 */
std::int64_t
steerBand(const BandTable &h, std::int64_t d, std::int64_t lo,
          std::int64_t hi)
{
    const std::int32_t top = h.at(hi, d - hi);
    const std::int32_t bot = h.at(lo, d - lo);
    return top > bot ? 1 : 0;
}

/** Set the boundary cells (i = 0 / j = 0) of diagonal @p d. */
void
fillBoundary(Tables &tab, const SwgParams &sp, std::int64_t d,
             std::int64_t m, std::int64_t n)
{
    const std::int32_t open = sp.gapOpen + sp.gapExtend;
    if (d == 0) {
        tab.h.set(0, 0, 0);
        return;
    }
    // (0, d): leading gap along the text.
    if (d <= n && tab.h.bandLo(d) <= 0) {
        const auto g = static_cast<std::int32_t>(
            -(sp.gapOpen + sp.gapExtend * d));
        tab.h.set(0, d, g);
        tab.e.set(0, d, g);
    }
    // (d, 0): leading gap along the pattern.
    if (d <= m && tab.h.bandHi(d) >= d) {
        const auto g = static_cast<std::int32_t>(
            -(sp.gapOpen + sp.gapExtend * d));
        tab.h.set(d, 0, g);
        tab.f.set(d, 0, g);
    }
    (void)open;
}

/** Functional interior recurrence (golden model for every variant). */
void
swgCell(Tables &tab, const SwgParams &sp, std::string_view p,
        std::string_view t, std::int64_t i, std::int64_t j,
        std::int32_t &hOut, std::int32_t &eOut, std::int32_t &fOut)
{
    const std::int32_t open = sp.gapOpen + sp.gapExtend;
    const std::int32_t e = std::max(tab.h.at(i, j - 1) - open,
                                    tab.e.at(i, j - 1) - sp.gapExtend);
    const std::int32_t f = std::max(tab.h.at(i - 1, j) - open,
                                    tab.f.at(i - 1, j) - sp.gapExtend);
    const bool match = p[static_cast<std::size_t>(i - 1)] ==
                       t[static_cast<std::size_t>(j - 1)];
    const std::int32_t sub = tab.h.at(i - 1, j - 1) +
                             (match ? sp.match : sp.mismatch);
    hOut = std::max(sub, std::max(e, f));
    eOut = e;
    fOut = f;
}

/** Scalar fill (Ref untimed / Base timed). */
void
fillScalar(Tables &tab, const SwgParams &sp, std::string_view p,
           std::string_view t, isa::BaseUnit *bu)
{
    const auto m = static_cast<std::int64_t>(p.size());
    const auto n = static_cast<std::int64_t>(t.size());
    for (std::int64_t d = 0; d <= m + n; ++d) {
        fillBoundary(tab, sp, d, m, n);
        const std::int64_t lo =
            std::max<std::int64_t>(tab.h.bandLo(d),
                                   std::max<std::int64_t>(1, d - n));
        const std::int64_t hi =
            std::min<std::int64_t>(tab.h.bandHi(d), d - 1);
        const std::int64_t w = hi - lo + 1;
        // Diagonal-major banding keeps each operand a contiguous run
        // on a previous diagonal. When every run lies inside storage,
        // index with k = i - lo instead of re-deriving band offsets
        // per cell; any run that leaves storage (band edge) drops the
        // whole slice back to the sentinel-checked at() recurrence.
        const std::int32_t *h1 = nullptr, *e1 = nullptr, *f1 = nullptr,
                           *h2 = nullptr;
        std::int32_t *hRow = nullptr, *eRow = nullptr, *fRow = nullptr;
        if (w > 0) {
            h1 = tab.h.rowIfValid(d - 1, lo - 1, w + 1);
            e1 = tab.e.rowIfValid(d - 1, lo, w);
            f1 = tab.f.rowIfValid(d - 1, lo - 1, w);
            h2 = tab.h.rowIfValid(d - 2, lo - 1, w);
            hRow = tab.h.row(d, lo, w);
            eRow = tab.e.row(d, lo, w);
            fRow = tab.f.row(d, lo, w);
        }
        const bool fast = h1 && e1 && f1 && h2;
        const std::int32_t open = sp.gapOpen + sp.gapExtend;
        for (std::int64_t i = lo; i <= hi; ++i) {
            const std::int64_t j = d - i;
            const std::int64_t k = i - lo;
            if (bu) {
                using sim::OpClass;
                const sim::MemOp cellLoads[] = {
                    {OpClass::ScalarLoad, kSiteH1,
                     addrOf(tab.h.ptr(d - 1, i)), 4},
                    {OpClass::ScalarLoad, kSiteH1b,
                     addrOf(tab.h.ptr(d - 1, i - 1)), 4},
                    {OpClass::ScalarLoad, kSiteE1,
                     addrOf(tab.e.ptr(d - 1, i)), 4},
                    {OpClass::ScalarLoad, kSiteF1,
                     addrOf(tab.f.ptr(d - 1, i - 1)), 4},
                    {OpClass::ScalarLoad, kSiteH2,
                     addrOf(tab.h.ptr(d - 2, i - 1)), 4},
                    {OpClass::ScalarLoad, kSiteP,
                     addrOf(&p[static_cast<std::size_t>(i - 1)]), 1},
                    {OpClass::ScalarLoad, kSiteT,
                     addrOf(&t[static_cast<std::size_t>(j - 1)]), 1},
                };
                bu->loads(cellLoads);
                bu->alu(8);
            }
            std::int32_t hv, ev, fv;
            if (fast) {
                const std::int32_t e =
                    std::max(h1[k + 1] - open, e1[k] - sp.gapExtend);
                const std::int32_t f =
                    std::max(h1[k] - open, f1[k] - sp.gapExtend);
                const bool match = p[static_cast<std::size_t>(i - 1)] ==
                                   t[static_cast<std::size_t>(j - 1)];
                const std::int32_t sub =
                    h2[k] + (match ? sp.match : sp.mismatch);
                hv = std::max(sub, std::max(e, f));
                ev = e;
                fv = f;
            } else {
                swgCell(tab, sp, p, t, i, j, hv, ev, fv);
            }
            hRow[k] = hv;
            eRow[k] = ev;
            fRow[k] = fv;
            if (bu) {
                using sim::OpClass;
                const sim::MemOp cellStores[] = {
                    {OpClass::ScalarStore, kSiteHS, addrOf(hRow + k), 4},
                    {OpClass::ScalarStore, kSiteHS, addrOf(eRow + k), 4},
                    {OpClass::ScalarStore, kSiteHS, addrOf(fRow + k), 4},
                };
                bu->stores(cellStores);
            }
        }
        if (lo <= hi) {
            tab.recenter(d + 1, tab.h.center(d) +
                                    steerBand(tab.h, d, lo, hi));
            if (std::getenv("QZ_DEBUG_BAND") && d % 20 == 0)
                std::fprintf(stderr, "d=%ld center=%ld lo=%ld hi=%ld "
                             "top=%d bot=%d\n", (long)d,
                             (long)tab.h.center(d + 1), (long)lo,
                             (long)hi, tab.h.at(hi, d - hi),
                             tab.h.at(lo, d - lo));
            if (bu) {
                bu->loadInt(kSiteHS, tab.h.ptr(d, lo));
                bu->loadInt(kSiteHS, tab.h.ptr(d, hi));
                bu->alu(2);
            }
        }
    }
}

/**
 * Vector fill (Vec / Qz).
 *
 * The Vec path loads the previous two diagonals from the L1, paying
 * the misaligned store-to-load forwarding penalty on the diagonal-to-
 * diagonal critical chain. The Qz path implements Fig. 7: the rolling
 * H/E/F band rows live in the QBUFFERs (they fit comfortably: the
 * band is 31 cells), so the chain sees 2-cycle qzload reads instead.
 * The full tables are still written to memory for the traceback.
 */
void
fillVector(Tables &tab, const SwgParams &sp, std::string_view p,
           std::string_view t, isa::VectorUnit &vpu, accel::QzUnit *qz)
{
    constexpr unsigned L = isa::kLanes32;
    const auto m = static_cast<std::int64_t>(p.size());
    const auto n = static_cast<std::int64_t>(t.size());
    const std::int32_t open = sp.gapOpen + sp.gapExtend;

    std::string trev(t.rbegin(), t.rend());
    for (std::size_t c = 0; c < trev.size(); c += 64) {
        const unsigned bytes =
            static_cast<unsigned>(std::min<std::size_t>(64,
                                                        trev.size() - c));
        const VReg chunk = vpu.load(kSiteT, trev.data() + c, bytes);
        vpu.store(kSiteT, trev.data() + c, chunk, bytes);
    }

    // QBUFFER layout (64-bit elements): two generations of each band
    // row, 64 slots apart; buffer 0 holds H, buffer 1 holds E and F.
    constexpr std::uint64_t kGenStride = 64;
    constexpr std::uint64_t kFBase = 128;
    auto genBase = [](std::int64_t d) {
        return static_cast<std::uint64_t>(d & 1) * kGenStride;
    };
    if (qz)
        qz->qzconf(2 * kGenStride, kFBase + 2 * kGenStride,
                   genomics::ElementSize::Bits64);

    // Band rows are addressed by slot = i - bandLo(d) + pad; slot 0
    // maps to QBUFFER element genBase(d) + 0.
    sim::Tag qzRowDep{};
    // Packed rows: one 64-bit element holds two int32 band cells, so
    // a whole 16-cell slice moves in one qzload / qzstore.
    auto qzReadRow = [&](accel::QzSel sel, std::uint64_t base,
                         std::int64_t slot, unsigned cnt,
                         sim::Tag &dep) {
        const unsigned lanes =
            std::min(8u, (static_cast<unsigned>(slot & 1) + cnt + 1) / 2);
        const isa::Pred p = vpu.whilelt(0, lanes, 8);
        VReg idx;
        for (unsigned l = 0; l < 8; ++l)
            idx.words[l] = base / 2 + static_cast<std::uint64_t>(
                                          slot / 2 + l);
        idx.tag = dep;
        VReg row = qz->qzload(idx, sel, p, 8);
        if (slot & 1)
            row = vpu.shr64i(row, 32); // ext: realign odd offsets
        return row;
    };
    auto qzWriteRow = [&](accel::QzSel sel, std::uint64_t base,
                          const VReg &row, unsigned cnt) {
        const unsigned lanes = std::min(8u, (cnt + 1) / 2);
        VReg idx;
        for (unsigned l = 0; l < 8; ++l)
            idx.words[l] = base / 2 + l;
        idx.tag = row.tag;
        qz->qzstore(row, idx, sel, vpu.whilelt(0, lanes, 8), 8);
        qzRowDep = row.tag;
    };
    (void)qzRowDep;

    const VReg vmatch = vpu.dup32(sp.match);
    const VReg vmis = vpu.dup32(sp.mismatch);
    sim::Tag prevStore{};
    sim::Tag qzDep{};
    for (std::int64_t d = 0; d <= m + n; ++d) {
        fillBoundary(tab, sp, d, m, n);
        vpu.scalarOps(2);
        const std::int64_t lo =
            std::max<std::int64_t>(tab.h.bandLo(d),
                                   std::max<std::int64_t>(1, d - n));
        const std::int64_t hi =
            std::min<std::int64_t>(tab.h.bandHi(d), d - 1);
        sim::Tag diagStore{};
        for (std::int64_t i0 = lo; i0 <= hi;
             i0 += static_cast<std::int64_t>(L)) {
            const unsigned cnt = static_cast<unsigned>(
                std::min<std::int64_t>(L, hi - i0 + 1));
            const unsigned bytes = cnt * 4;
            using VU = isa::VectorUnit;
            VReg h1a, h1b, e1, f1, h2, pcv, tcv;
            if (qz) {
                // Fig. 7: the previous two generations come from the
                // QBUFFERs in 2-cycle reads. Functional values still
                // come from the golden band tables below.
                const std::int64_t s1 =
                    i0 - tab.h.bandLo(d - 1) + BandTable::kPad;
                const std::int64_t s2 =
                    i0 - 1 - tab.h.bandLo(d - 2) + BandTable::kPad;
                h1a = qzReadRow(accel::QzSel::Buf0, genBase(d - 1), s1,
                                cnt, qzDep);
                h1b = qzReadRow(accel::QzSel::Buf0, genBase(d - 1),
                                s1 - 1, cnt, qzDep);
                h2 = qzReadRow(accel::QzSel::Buf0, genBase(d - 2), s2,
                               cnt, qzDep);
                e1 = qzReadRow(accel::QzSel::Buf1, genBase(d - 1), s1,
                               cnt, qzDep);
                f1 = qzReadRow(accel::QzSel::Buf1,
                               kFBase + genBase(d - 1), s1 - 1, cnt,
                               qzDep);
                // The model reads stale QBUFFER contents; substitute
                // the functional values (identical once warm). Each
                // operand is a contiguous band run — bulk-copy into
                // the low cnt elements when the run lies in storage,
                // fall back to the sentinel-checked at() otherwise.
                auto fill = [cnt, bytes](VReg &dst, const BandTable &bt,
                                         std::int64_t rd,
                                         std::int64_t ri) {
                    if (const std::int32_t *run =
                            bt.rowIfValid(rd, ri, cnt)) {
                        std::memcpy(dst.words.data(), run, bytes);
                        return;
                    }
                    for (unsigned l = 0; l < cnt; ++l)
                        dst.setI32(l, bt.at(ri + l, rd - (ri + l)));
                };
                fill(h1a, tab.h, d - 1, i0);
                fill(h1b, tab.h, d - 1, i0 - 1);
                fill(h2, tab.h, d - 2, i0 - 1);
                fill(e1, tab.e, d - 1, i0);
                fill(f1, tab.f, d - 1, i0 - 1);
                pcv = vpu.load8to32(kSiteP, p.data() + (i0 - 1), cnt);
                tcv = vpu.load8to32(kSiteT,
                                    trev.data() + (n - d + i0), cnt);
            } else {
                const sim::Tag fwd{prevStore.ready + kForwardPenalty,
                                   prevStore.mem};
                // Two charge runs per slice (the forwarding-gated
                // band loads, then the conflict-free ones), each
                // register rebuilt from its own tag — byte-identical
                // to the per-op load()/load8to32() sequence.
                const sim::MemOp fwdLoads[] = {
                    {sim::OpClass::VecLoad, kSiteH1,
                     addrOf(tab.h.ptr(d - 1, i0)), bytes},
                    {sim::OpClass::VecLoad, kSiteH1b,
                     addrOf(tab.h.ptr(d - 1, i0 - 1)), bytes},
                    {sim::OpClass::VecLoad, kSiteE1,
                     addrOf(tab.e.ptr(d - 1, i0)), bytes},
                    {sim::OpClass::VecLoad, kSiteF1,
                     addrOf(tab.f.ptr(d - 1, i0 - 1)), bytes},
                };
                sim::Tag ft[4];
                vpu.chargeMemRun(fwdLoads, fwd, ft);
                h1a = VU::lanes(tab.h.ptr(d - 1, i0), bytes, ft[0]);
                h1b = VU::lanes(tab.h.ptr(d - 1, i0 - 1), bytes,
                                ft[1]);
                e1 = VU::lanes(tab.e.ptr(d - 1, i0), bytes, ft[2]);
                f1 = VU::lanes(tab.f.ptr(d - 1, i0 - 1), bytes, ft[3]);

                const sim::MemOp freeLoads[] = {
                    {sim::OpClass::VecLoad, kSiteH2,
                     addrOf(tab.h.ptr(d - 2, i0 - 1)), bytes},
                    {sim::OpClass::VecLoad, kSiteP,
                     addrOf(p.data() + (i0 - 1)), cnt},
                    {sim::OpClass::VecLoad, kSiteT,
                     addrOf(trev.data() + (n - d + i0)), cnt},
                };
                sim::Tag rt[3];
                vpu.chargeMemRun(freeLoads, sim::Tag{}, rt);
                h2 = VU::lanes(tab.h.ptr(d - 2, i0 - 1), bytes, rt[0]);
                pcv = vpu.widenLanes8to32(p.data() + (i0 - 1), cnt,
                                          rt[1]);
                tcv = vpu.widenLanes8to32(
                    trev.data() + (n - d + i0), cnt, rt[2]);
            }

            // Substitution scores from the contiguous residue loads.
            const VReg &pc = pcv;
            const VReg &tc = tcv;
            const Pred lanes = vpu.whilelt(0, cnt, L);
            const Pred eqp = vpu.cmpeq32(pc, tc, lanes, L);
            const VReg subst = vpu.sel32(eqp, vmatch, vmis);

            const VReg ev = vpu.max32(vpu.add32i(h1a, -open),
                                      vpu.add32i(e1, -sp.gapExtend));
            const VReg fv = vpu.max32(vpu.add32i(h1b, -open),
                                      vpu.add32i(f1, -sp.gapExtend));
            const VReg hv =
                vpu.max32(vpu.add32(h2, subst), vpu.max32(ev, fv));

            // The cnt result cells are one contiguous in-band run on
            // diagonal d (row() keeps set()'s out-of-storage panic).
            std::memcpy(tab.h.row(d, i0, cnt), hv.words.data(), bytes);
            std::memcpy(tab.e.row(d, i0, cnt), ev.words.data(), bytes);
            std::memcpy(tab.f.row(d, i0, cnt), fv.words.data(), bytes);
            if (qz) {
                // Rolling band rows go back into the QBUFFERs; the
                // full tables are written to memory for traceback
                // (plain streaming stores, no reload).
                qzWriteRow(accel::QzSel::Buf0, genBase(d), hv, cnt);
                qzWriteRow(accel::QzSel::Buf1, genBase(d), ev, cnt);
                qzWriteRow(accel::QzSel::Buf1, kFBase + genBase(d), fv,
                           cnt);
                qzDep = hv.tag;
            }
            vpu.store(kSiteHS, tab.e.ptr(d, i0), ev, bytes);
            vpu.store(kSiteHS, tab.f.ptr(d, i0), fv, bytes);
            diagStore = vpu.store(kSiteHS, tab.h.ptr(d, i0), hv, bytes);
        }
        if (lo <= hi) {
            tab.recenter(d + 1, tab.h.center(d) +
                                    steerBand(tab.h, d, lo, hi));
            vpu.scalarLoad(kSiteHS, tab.h.ptr(d, lo), 4);
            vpu.scalarLoad(kSiteHS, tab.h.ptr(d, hi), 4);
            vpu.scalarOps(2);
        }
        prevStore = diagStore;
    }
}

/** Shared affine traceback over the banded tables. */
Cigar
swgTraceback(Tables &tab, const SwgParams &sp, std::string_view p,
             std::string_view t, isa::VectorUnit *vpu)
{
    const auto m = static_cast<std::int64_t>(p.size());
    const auto n = static_cast<std::int64_t>(t.size());
    const std::int32_t open = sp.gapOpen + sp.gapExtend;
    Cigar rev;
    std::int64_t i = m, j = n;
    enum class St { H, E, F } st = St::H;
    while (i > 0 || j > 0) {
        if (vpu) {
            vpu->scalarLoad(kSiteTb, tab.h.ptr(i + j, std::max<std::int64_t>(
                                       i, tab.h.bandLo(i + j))), 4);
            vpu->scalarOps(3);
        }
        if (st == St::H) {
            if (i == 0) {
                rev.append('I');
                --j;
                continue;
            }
            if (j == 0) {
                rev.append('D');
                --i;
                continue;
            }
            const std::int32_t here = tab.h.at(i, j);
            const bool match = p[static_cast<std::size_t>(i - 1)] ==
                               t[static_cast<std::size_t>(j - 1)];
            const std::int32_t sub =
                tab.h.at(i - 1, j - 1) +
                (match ? sp.match : sp.mismatch);
            if (here == sub) {
                rev.append(match ? 'M' : 'X');
                --i;
                --j;
            } else if (here == tab.e.at(i, j)) {
                st = St::E;
            } else if (here == tab.f.at(i, j)) {
                st = St::F;
            } else {
                panic("SWG traceback: inconsistent H cell ({}, {})", i,
                      j);
            }
        } else if (st == St::E) {
            const std::int32_t here = tab.e.at(i, j);
            rev.append('I');
            if (here == tab.h.at(i, j - 1) - open)
                st = St::H;
            else
                panic_if_not(here == tab.e.at(i, j - 1) - sp.gapExtend,
                             "SWG traceback: inconsistent E cell "
                             "({}, {})", i, j);
            --j;
        } else {
            const std::int32_t here = tab.f.at(i, j);
            rev.append('D');
            if (here == tab.h.at(i - 1, j) - open)
                st = St::H;
            else
                panic_if_not(here == tab.f.at(i - 1, j) - sp.gapExtend,
                             "SWG traceback: inconsistent F cell "
                             "({}, {})", i, j);
            --i;
        }
    }
    std::reverse(rev.ops.begin(), rev.ops.end());
    return rev;
}

} // namespace

SwgResult
swgAlign(Variant variant, std::string_view pattern, std::string_view text,
         const SwgParams &params, isa::VectorUnit *vpu,
         accel::QzUnit *qz, bool traceback)
{
    SwgResult result;
    if (pattern.empty() || text.empty()) {
        const auto gaps = static_cast<std::int64_t>(
            std::max(pattern.size(), text.size()));
        if (gaps > 0) {
            result.score = -(params.gapOpen + params.gapExtend * gaps);
            if (traceback)
                result.cigar.append(pattern.empty() ? 'I' : 'D',
                                    static_cast<std::size_t>(gaps));
        }
        return result;
    }

    const auto m = static_cast<std::int64_t>(pattern.size());
    const auto n = static_cast<std::int64_t>(text.size());
    Tables tab(m, n, params.bandHalf, params.adaptiveBand);

    switch (variant) {
      case Variant::Ref:
        fillScalar(tab, params, pattern, text, nullptr);
        break;
      case Variant::Base: {
        panic_if_not(vpu != nullptr, "Base SWG needs a VectorUnit");
        isa::BaseUnit bu(vpu->pipeline());
        fillScalar(tab, params, pattern, text, &bu);
        break;
      }
      case Variant::Vec:
        panic_if_not(vpu != nullptr, "Vec SWG needs a VectorUnit");
        fillVector(tab, params, pattern, text, *vpu, nullptr);
        break;
      case Variant::Qz:
      case Variant::QzC:
        panic_if_not(vpu != nullptr && qz != nullptr,
                     "Qz SWG needs a VectorUnit and a QzUnit");
        fillVector(tab, params, pattern, text, *vpu,
                   params.qbufferRows ? qz : nullptr);
        break;
    }

    result.score = tab.h.at(m, n);
    if (traceback)
        result.cigar = swgTraceback(tab, params, pattern, text,
                                    variant == Variant::Ref ? nullptr
                                                            : vpu);
    return result;
}

} // namespace quetzal::algos
