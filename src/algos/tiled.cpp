#include "algos/tiled.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace quetzal::algos {

std::size_t
tiledWindowCount(std::size_t patternLength, const TiledConfig &config)
{
    fatal_if(config.windowBases == 0, "window size must be positive");
    return std::max<std::size_t>(
        1, (patternLength + config.windowBases - 1) /
               config.windowBases);
}

AlignResult
tiledAlign(WfaEngine &engine, std::string_view pattern,
           std::string_view text, const TiledConfig &config,
           genomics::ElementSize esize)
{
    const std::size_t window = config.windowBases;
    const std::size_t capacity =
        esize == genomics::ElementSize::Bits2 ? 32768 : 8192;
    fatal_if(window == 0, "window size must be positive");
    fatal_if(window > capacity,
             "window of {} bases exceeds the QBUFFER capacity {} at "
             "this encoding",
             window, capacity);

    if (pattern.size() <= window && text.size() <= capacity)
        return wfaAlign(engine, pattern, text, true, esize);

    AlignResult total;
    const std::size_t windows = tiledWindowCount(pattern.size(), config);
    // Cumulative (text consumed - pattern consumed): where the next
    // text window starts relative to the pattern cut.
    std::int64_t drift = 0;
    std::size_t pLo = 0;
    for (std::size_t g = 0; g < windows; ++g) {
        const bool last = g + 1 == windows;
        const std::size_t pHi =
            last ? pattern.size()
                 : std::min(pattern.size(), pLo + window);
        const std::size_t chunk = pHi - pLo;

        const auto tLo = static_cast<std::size_t>(
            std::clamp<std::int64_t>(
                static_cast<std::int64_t>(pLo) + drift, 0,
                static_cast<std::int64_t>(text.size())));
        // Equal-length text window; the final window absorbs the
        // length difference.
        std::size_t tHi =
            last ? text.size() : std::min(text.size(), tLo + chunk);
        // The final window absorbs the length difference but must
        // still fit the scratchpad; clamp and patch with a gap.
        std::size_t tailGap = 0;
        if (last && tHi - tLo > capacity) {
            tailGap = (tHi - tLo) - capacity;
            tHi = tLo + capacity;
        }

        const std::string_view pWin = pattern.substr(pLo, chunk);
        const std::string_view tWin = text.substr(tLo, tHi - tLo);
        panic_if_not(last || tWin.size() <= capacity,
                     "text window exceeds the QBUFFER capacity");

        AlignResult part;
        if (pWin.empty() || tWin.empty()) {
            // Degenerate window (drift consumed the text): pure gap.
            part.score = static_cast<std::int64_t>(
                std::max(pWin.size(), tWin.size()));
            part.cigar.append(pWin.empty() ? 'I' : 'D',
                              std::max(pWin.size(), tWin.size()));
        } else {
            part = wfaAlign(engine, pWin, tWin, true, esize);
        }

        total.score += part.score;
        total.cigar.ops += part.cigar.ops;
        if (tailGap > 0) {
            total.score += static_cast<std::int64_t>(tailGap);
            total.cigar.append('I', tailGap);
        }
        drift += static_cast<std::int64_t>(tHi - tLo) -
                 static_cast<std::int64_t>(chunk);
        pLo = pHi;
    }
    return total;
}

} // namespace quetzal::algos
