# Empty dependencies file for bench_fig14b_pipeline.
# This may be replaced when dependencies are built.
