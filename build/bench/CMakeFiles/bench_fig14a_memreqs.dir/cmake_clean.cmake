file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14a_memreqs.dir/bench_fig14a_memreqs.cpp.o"
  "CMakeFiles/bench_fig14a_memreqs.dir/bench_fig14a_memreqs.cpp.o.d"
  "bench_fig14a_memreqs"
  "bench_fig14a_memreqs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14a_memreqs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
