# Empty compiler generated dependencies file for bench_fig14a_memreqs.
# This may be replaced when dependencies are built.
