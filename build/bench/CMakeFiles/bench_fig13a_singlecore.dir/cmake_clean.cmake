file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13a_singlecore.dir/bench_fig13a_singlecore.cpp.o"
  "CMakeFiles/bench_fig13a_singlecore.dir/bench_fig13a_singlecore.cpp.o.d"
  "bench_fig13a_singlecore"
  "bench_fig13a_singlecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13a_singlecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
