# Empty dependencies file for bench_fig13a_singlecore.
# This may be replaced when dependencies are built.
