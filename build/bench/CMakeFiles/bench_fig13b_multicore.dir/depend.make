# Empty dependencies file for bench_fig13b_multicore.
# This may be replaced when dependencies are built.
