# Empty dependencies file for bench_fig12_ports.
# This may be replaced when dependencies are built.
