file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ports.dir/bench_fig12_ports.cpp.o"
  "CMakeFiles/bench_fig12_ports.dir/bench_fig12_ports.cpp.o.d"
  "bench_fig12_ports"
  "bench_fig12_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
