# Empty compiler generated dependencies file for bench_fig15b_other_domains.
# This may be replaced when dependencies are built.
