file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15b_other_domains.dir/bench_fig15b_other_domains.cpp.o"
  "CMakeFiles/bench_fig15b_other_domains.dir/bench_fig15b_other_domains.cpp.o.d"
  "bench_fig15b_other_domains"
  "bench_fig15b_other_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15b_other_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
