# Empty dependencies file for bench_table3_area.
# This may be replaced when dependencies are built.
