# Empty compiler generated dependencies file for bench_fig15a_gpu.
# This may be replaced when dependencies are built.
