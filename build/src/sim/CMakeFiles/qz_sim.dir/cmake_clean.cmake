file(REMOVE_RECURSE
  "CMakeFiles/qz_sim.dir/cache.cpp.o"
  "CMakeFiles/qz_sim.dir/cache.cpp.o.d"
  "CMakeFiles/qz_sim.dir/memsystem.cpp.o"
  "CMakeFiles/qz_sim.dir/memsystem.cpp.o.d"
  "CMakeFiles/qz_sim.dir/multicore.cpp.o"
  "CMakeFiles/qz_sim.dir/multicore.cpp.o.d"
  "CMakeFiles/qz_sim.dir/pipeline.cpp.o"
  "CMakeFiles/qz_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/qz_sim.dir/prefetcher.cpp.o"
  "CMakeFiles/qz_sim.dir/prefetcher.cpp.o.d"
  "libqz_sim.a"
  "libqz_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
