
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/qz_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/qz_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/memsystem.cpp" "src/sim/CMakeFiles/qz_sim.dir/memsystem.cpp.o" "gcc" "src/sim/CMakeFiles/qz_sim.dir/memsystem.cpp.o.d"
  "/root/repo/src/sim/multicore.cpp" "src/sim/CMakeFiles/qz_sim.dir/multicore.cpp.o" "gcc" "src/sim/CMakeFiles/qz_sim.dir/multicore.cpp.o.d"
  "/root/repo/src/sim/pipeline.cpp" "src/sim/CMakeFiles/qz_sim.dir/pipeline.cpp.o" "gcc" "src/sim/CMakeFiles/qz_sim.dir/pipeline.cpp.o.d"
  "/root/repo/src/sim/prefetcher.cpp" "src/sim/CMakeFiles/qz_sim.dir/prefetcher.cpp.o" "gcc" "src/sim/CMakeFiles/qz_sim.dir/prefetcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
