file(REMOVE_RECURSE
  "libqz_sim.a"
)
