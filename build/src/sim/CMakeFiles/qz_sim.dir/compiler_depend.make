# Empty compiler generated dependencies file for qz_sim.
# This may be replaced when dependencies are built.
