file(REMOVE_RECURSE
  "libqz_genomics.a"
)
