file(REMOVE_RECURSE
  "CMakeFiles/qz_genomics.dir/alphabet.cpp.o"
  "CMakeFiles/qz_genomics.dir/alphabet.cpp.o.d"
  "CMakeFiles/qz_genomics.dir/datasets.cpp.o"
  "CMakeFiles/qz_genomics.dir/datasets.cpp.o.d"
  "CMakeFiles/qz_genomics.dir/encoding.cpp.o"
  "CMakeFiles/qz_genomics.dir/encoding.cpp.o.d"
  "CMakeFiles/qz_genomics.dir/fasta.cpp.o"
  "CMakeFiles/qz_genomics.dir/fasta.cpp.o.d"
  "CMakeFiles/qz_genomics.dir/protein.cpp.o"
  "CMakeFiles/qz_genomics.dir/protein.cpp.o.d"
  "CMakeFiles/qz_genomics.dir/readsim.cpp.o"
  "CMakeFiles/qz_genomics.dir/readsim.cpp.o.d"
  "libqz_genomics.a"
  "libqz_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
