
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genomics/alphabet.cpp" "src/genomics/CMakeFiles/qz_genomics.dir/alphabet.cpp.o" "gcc" "src/genomics/CMakeFiles/qz_genomics.dir/alphabet.cpp.o.d"
  "/root/repo/src/genomics/datasets.cpp" "src/genomics/CMakeFiles/qz_genomics.dir/datasets.cpp.o" "gcc" "src/genomics/CMakeFiles/qz_genomics.dir/datasets.cpp.o.d"
  "/root/repo/src/genomics/encoding.cpp" "src/genomics/CMakeFiles/qz_genomics.dir/encoding.cpp.o" "gcc" "src/genomics/CMakeFiles/qz_genomics.dir/encoding.cpp.o.d"
  "/root/repo/src/genomics/fasta.cpp" "src/genomics/CMakeFiles/qz_genomics.dir/fasta.cpp.o" "gcc" "src/genomics/CMakeFiles/qz_genomics.dir/fasta.cpp.o.d"
  "/root/repo/src/genomics/protein.cpp" "src/genomics/CMakeFiles/qz_genomics.dir/protein.cpp.o" "gcc" "src/genomics/CMakeFiles/qz_genomics.dir/protein.cpp.o.d"
  "/root/repo/src/genomics/readsim.cpp" "src/genomics/CMakeFiles/qz_genomics.dir/readsim.cpp.o" "gcc" "src/genomics/CMakeFiles/qz_genomics.dir/readsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
