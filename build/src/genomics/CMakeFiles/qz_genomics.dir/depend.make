# Empty dependencies file for qz_genomics.
# This may be replaced when dependencies are built.
