# Empty compiler generated dependencies file for qz_genomics.
# This may be replaced when dependencies are built.
