file(REMOVE_RECURSE
  "CMakeFiles/qz_algos.dir/biwfa.cpp.o"
  "CMakeFiles/qz_algos.dir/biwfa.cpp.o.d"
  "CMakeFiles/qz_algos.dir/cigar.cpp.o"
  "CMakeFiles/qz_algos.dir/cigar.cpp.o.d"
  "CMakeFiles/qz_algos.dir/nw.cpp.o"
  "CMakeFiles/qz_algos.dir/nw.cpp.o.d"
  "CMakeFiles/qz_algos.dir/report.cpp.o"
  "CMakeFiles/qz_algos.dir/report.cpp.o.d"
  "CMakeFiles/qz_algos.dir/runner.cpp.o"
  "CMakeFiles/qz_algos.dir/runner.cpp.o.d"
  "CMakeFiles/qz_algos.dir/sam.cpp.o"
  "CMakeFiles/qz_algos.dir/sam.cpp.o.d"
  "CMakeFiles/qz_algos.dir/shouji.cpp.o"
  "CMakeFiles/qz_algos.dir/shouji.cpp.o.d"
  "CMakeFiles/qz_algos.dir/sneakysnake.cpp.o"
  "CMakeFiles/qz_algos.dir/sneakysnake.cpp.o.d"
  "CMakeFiles/qz_algos.dir/swg.cpp.o"
  "CMakeFiles/qz_algos.dir/swg.cpp.o.d"
  "CMakeFiles/qz_algos.dir/tiled.cpp.o"
  "CMakeFiles/qz_algos.dir/tiled.cpp.o.d"
  "CMakeFiles/qz_algos.dir/wfa.cpp.o"
  "CMakeFiles/qz_algos.dir/wfa.cpp.o.d"
  "CMakeFiles/qz_algos.dir/wfa_affine.cpp.o"
  "CMakeFiles/qz_algos.dir/wfa_affine.cpp.o.d"
  "CMakeFiles/qz_algos.dir/wfa_engine.cpp.o"
  "CMakeFiles/qz_algos.dir/wfa_engine.cpp.o.d"
  "libqz_algos.a"
  "libqz_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
