# Empty dependencies file for qz_algos.
# This may be replaced when dependencies are built.
