
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/biwfa.cpp" "src/algos/CMakeFiles/qz_algos.dir/biwfa.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/biwfa.cpp.o.d"
  "/root/repo/src/algos/cigar.cpp" "src/algos/CMakeFiles/qz_algos.dir/cigar.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/cigar.cpp.o.d"
  "/root/repo/src/algos/nw.cpp" "src/algos/CMakeFiles/qz_algos.dir/nw.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/nw.cpp.o.d"
  "/root/repo/src/algos/report.cpp" "src/algos/CMakeFiles/qz_algos.dir/report.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/report.cpp.o.d"
  "/root/repo/src/algos/runner.cpp" "src/algos/CMakeFiles/qz_algos.dir/runner.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/runner.cpp.o.d"
  "/root/repo/src/algos/sam.cpp" "src/algos/CMakeFiles/qz_algos.dir/sam.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/sam.cpp.o.d"
  "/root/repo/src/algos/shouji.cpp" "src/algos/CMakeFiles/qz_algos.dir/shouji.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/shouji.cpp.o.d"
  "/root/repo/src/algos/sneakysnake.cpp" "src/algos/CMakeFiles/qz_algos.dir/sneakysnake.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/sneakysnake.cpp.o.d"
  "/root/repo/src/algos/swg.cpp" "src/algos/CMakeFiles/qz_algos.dir/swg.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/swg.cpp.o.d"
  "/root/repo/src/algos/tiled.cpp" "src/algos/CMakeFiles/qz_algos.dir/tiled.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/tiled.cpp.o.d"
  "/root/repo/src/algos/wfa.cpp" "src/algos/CMakeFiles/qz_algos.dir/wfa.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/wfa.cpp.o.d"
  "/root/repo/src/algos/wfa_affine.cpp" "src/algos/CMakeFiles/qz_algos.dir/wfa_affine.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/wfa_affine.cpp.o.d"
  "/root/repo/src/algos/wfa_engine.cpp" "src/algos/CMakeFiles/qz_algos.dir/wfa_engine.cpp.o" "gcc" "src/algos/CMakeFiles/qz_algos.dir/wfa_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quetzal/CMakeFiles/qz_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/qz_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/qz_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qz_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
