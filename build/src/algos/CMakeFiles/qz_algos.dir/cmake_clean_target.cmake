file(REMOVE_RECURSE
  "libqz_algos.a"
)
