file(REMOVE_RECURSE
  "CMakeFiles/qz_kernels.dir/histogram.cpp.o"
  "CMakeFiles/qz_kernels.dir/histogram.cpp.o.d"
  "CMakeFiles/qz_kernels.dir/spmv.cpp.o"
  "CMakeFiles/qz_kernels.dir/spmv.cpp.o.d"
  "libqz_kernels.a"
  "libqz_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
