# Empty dependencies file for qz_kernels.
# This may be replaced when dependencies are built.
