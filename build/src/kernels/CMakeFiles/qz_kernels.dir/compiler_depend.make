# Empty compiler generated dependencies file for qz_kernels.
# This may be replaced when dependencies are built.
