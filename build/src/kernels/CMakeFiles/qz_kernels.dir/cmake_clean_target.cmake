file(REMOVE_RECURSE
  "libqz_kernels.a"
)
