# Empty dependencies file for qz_isa.
# This may be replaced when dependencies are built.
