file(REMOVE_RECURSE
  "libqz_isa.a"
)
