file(REMOVE_RECURSE
  "CMakeFiles/qz_isa.dir/vectorunit.cpp.o"
  "CMakeFiles/qz_isa.dir/vectorunit.cpp.o.d"
  "libqz_isa.a"
  "libqz_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
