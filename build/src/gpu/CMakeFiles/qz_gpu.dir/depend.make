# Empty dependencies file for qz_gpu.
# This may be replaced when dependencies are built.
