file(REMOVE_RECURSE
  "CMakeFiles/qz_gpu.dir/gpu_model.cpp.o"
  "CMakeFiles/qz_gpu.dir/gpu_model.cpp.o.d"
  "libqz_gpu.a"
  "libqz_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
