file(REMOVE_RECURSE
  "libqz_gpu.a"
)
