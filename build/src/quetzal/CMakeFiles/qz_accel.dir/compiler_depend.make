# Empty compiler generated dependencies file for qz_accel.
# This may be replaced when dependencies are built.
