file(REMOVE_RECURSE
  "CMakeFiles/qz_accel.dir/area_model.cpp.o"
  "CMakeFiles/qz_accel.dir/area_model.cpp.o.d"
  "CMakeFiles/qz_accel.dir/qbuffer.cpp.o"
  "CMakeFiles/qz_accel.dir/qbuffer.cpp.o.d"
  "CMakeFiles/qz_accel.dir/qzunit.cpp.o"
  "CMakeFiles/qz_accel.dir/qzunit.cpp.o.d"
  "libqz_accel.a"
  "libqz_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
