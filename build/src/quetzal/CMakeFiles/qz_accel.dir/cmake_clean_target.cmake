file(REMOVE_RECURSE
  "libqz_accel.a"
)
