file(REMOVE_RECURSE
  "CMakeFiles/test_quetzal.dir/test_quetzal.cpp.o"
  "CMakeFiles/test_quetzal.dir/test_quetzal.cpp.o.d"
  "test_quetzal"
  "test_quetzal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quetzal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
