# Empty dependencies file for test_quetzal.
# This may be replaced when dependencies are built.
