# Empty compiler generated dependencies file for test_biwfa.
# This may be replaced when dependencies are built.
