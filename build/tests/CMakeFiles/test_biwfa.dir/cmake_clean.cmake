file(REMOVE_RECURSE
  "CMakeFiles/test_biwfa.dir/test_biwfa.cpp.o"
  "CMakeFiles/test_biwfa.dir/test_biwfa.cpp.o.d"
  "test_biwfa"
  "test_biwfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_biwfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
