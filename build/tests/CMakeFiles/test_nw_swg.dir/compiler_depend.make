# Empty compiler generated dependencies file for test_nw_swg.
# This may be replaced when dependencies are built.
