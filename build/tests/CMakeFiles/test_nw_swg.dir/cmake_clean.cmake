file(REMOVE_RECURSE
  "CMakeFiles/test_nw_swg.dir/test_nw_swg.cpp.o"
  "CMakeFiles/test_nw_swg.dir/test_nw_swg.cpp.o.d"
  "test_nw_swg"
  "test_nw_swg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nw_swg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
