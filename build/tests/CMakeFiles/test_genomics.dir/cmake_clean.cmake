file(REMOVE_RECURSE
  "CMakeFiles/test_genomics.dir/test_genomics.cpp.o"
  "CMakeFiles/test_genomics.dir/test_genomics.cpp.o.d"
  "test_genomics"
  "test_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
