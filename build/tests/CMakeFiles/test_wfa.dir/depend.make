# Empty dependencies file for test_wfa.
# This may be replaced when dependencies are built.
