file(REMOVE_RECURSE
  "CMakeFiles/test_wfa.dir/test_wfa.cpp.o"
  "CMakeFiles/test_wfa.dir/test_wfa.cpp.o.d"
  "test_wfa"
  "test_wfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
