# Empty dependencies file for test_sneakysnake.
# This may be replaced when dependencies are built.
