file(REMOVE_RECURSE
  "CMakeFiles/test_sneakysnake.dir/test_sneakysnake.cpp.o"
  "CMakeFiles/test_sneakysnake.dir/test_sneakysnake.cpp.o.d"
  "test_sneakysnake"
  "test_sneakysnake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sneakysnake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
