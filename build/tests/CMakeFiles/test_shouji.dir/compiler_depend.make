# Empty compiler generated dependencies file for test_shouji.
# This may be replaced when dependencies are built.
