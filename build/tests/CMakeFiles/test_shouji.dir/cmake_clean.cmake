file(REMOVE_RECURSE
  "CMakeFiles/test_shouji.dir/test_shouji.cpp.o"
  "CMakeFiles/test_shouji.dir/test_shouji.cpp.o.d"
  "test_shouji"
  "test_shouji.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shouji.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
