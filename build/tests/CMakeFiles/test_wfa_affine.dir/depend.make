# Empty dependencies file for test_wfa_affine.
# This may be replaced when dependencies are built.
