file(REMOVE_RECURSE
  "CMakeFiles/test_wfa_affine.dir/test_wfa_affine.cpp.o"
  "CMakeFiles/test_wfa_affine.dir/test_wfa_affine.cpp.o.d"
  "test_wfa_affine"
  "test_wfa_affine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wfa_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
