file(REMOVE_RECURSE
  "CMakeFiles/ultralong_reads.dir/ultralong_reads.cpp.o"
  "CMakeFiles/ultralong_reads.dir/ultralong_reads.cpp.o.d"
  "ultralong_reads"
  "ultralong_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultralong_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
