# Empty compiler generated dependencies file for ultralong_reads.
# This may be replaced when dependencies are built.
