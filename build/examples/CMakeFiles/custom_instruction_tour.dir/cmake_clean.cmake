file(REMOVE_RECURSE
  "CMakeFiles/custom_instruction_tour.dir/custom_instruction_tour.cpp.o"
  "CMakeFiles/custom_instruction_tour.dir/custom_instruction_tour.cpp.o.d"
  "custom_instruction_tour"
  "custom_instruction_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_instruction_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
