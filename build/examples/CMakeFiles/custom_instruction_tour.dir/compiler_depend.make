# Empty compiler generated dependencies file for custom_instruction_tour.
# This may be replaced when dependencies are built.
