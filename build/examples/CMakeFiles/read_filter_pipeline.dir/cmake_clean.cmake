file(REMOVE_RECURSE
  "CMakeFiles/read_filter_pipeline.dir/read_filter_pipeline.cpp.o"
  "CMakeFiles/read_filter_pipeline.dir/read_filter_pipeline.cpp.o.d"
  "read_filter_pipeline"
  "read_filter_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_filter_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
