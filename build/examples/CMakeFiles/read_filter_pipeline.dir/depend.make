# Empty dependencies file for read_filter_pipeline.
# This may be replaced when dependencies are built.
