file(REMOVE_RECURSE
  "CMakeFiles/qz_filter.dir/qz_filter.cpp.o"
  "CMakeFiles/qz_filter.dir/qz_filter.cpp.o.d"
  "qz_filter"
  "qz_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
