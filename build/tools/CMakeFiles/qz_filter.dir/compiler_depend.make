# Empty compiler generated dependencies file for qz_filter.
# This may be replaced when dependencies are built.
