# Empty dependencies file for qz_align.
# This may be replaced when dependencies are built.
