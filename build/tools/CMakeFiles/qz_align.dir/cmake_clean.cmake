file(REMOVE_RECURSE
  "CMakeFiles/qz_align.dir/qz_align.cpp.o"
  "CMakeFiles/qz_align.dir/qz_align.cpp.o.d"
  "qz_align"
  "qz_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
