file(REMOVE_RECURSE
  "CMakeFiles/qz_datagen.dir/qz_datagen.cpp.o"
  "CMakeFiles/qz_datagen.dir/qz_datagen.cpp.o.d"
  "qz_datagen"
  "qz_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qz_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
