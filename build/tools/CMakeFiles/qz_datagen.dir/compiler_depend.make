# Empty compiler generated dependencies file for qz_datagen.
# This may be replaced when dependencies are built.
