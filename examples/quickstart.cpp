/**
 * @file
 * Quickstart: align two DNA sequences with WFA on the simulated
 * QUETZAL-capable core and compare against the plain vector datapath.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <iostream>
#include <optional>

#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

int
main()
{
    using namespace quetzal;
    using algos::Variant;

    // 1. Make a read pair: a 500 bp reference window and a read with
    //    ~3% sequencing errors (deterministic seed).
    genomics::ReadSimConfig config;
    config.readLength = 500;
    config.errorRate = 0.03;
    config.seed = 2024;
    genomics::ReadSimulator sim(config);
    const auto pair = sim.generatePairs(1).front();
    std::cout << "Aligning a " << pair.pattern.size()
              << " bp read against a " << pair.text.size()
              << " bp window (" << pair.trueEdits
              << " injected edits)\n\n";

    // 2. Align on a core with the QUETZAL accelerator (QBUFFERs +
    //    count ALU), using the full Fig. 6a instruction flow.
    sim::SimContext qzCore(sim::SystemParams::withQuetzal());
    isa::VectorUnit qzVpu(qzCore.pipeline());
    accel::QzUnit qz(qzVpu, qzCore.params().quetzal);
    auto qzEngine = algos::makeWfaEngine(Variant::QzC, &qzVpu, &qz);
    const auto qzResult =
        algos::wfaAlign(*qzEngine, pair.pattern, pair.text);

    // 3. Align the same pair with SVE intrinsics only (no QUETZAL).
    sim::SimContext vecCore;
    isa::VectorUnit vecVpu(vecCore.pipeline());
    auto vecEngine = algos::makeWfaEngine(Variant::Vec, &vecVpu,
                                          nullptr);
    const auto vecResult =
        algos::wfaAlign(*vecEngine, pair.pattern, pair.text);

    // 4. Results are bit-identical; only the cycles differ.
    std::cout << "edit distance : " << qzResult.score << "\n"
              << "CIGAR (RLE)   : " << qzResult.cigar.rle() << "\n"
              << "valid CIGAR   : "
              << (algos::validateCigar(pair.pattern, pair.text,
                                       qzResult.cigar)
                      ? "yes"
                      : "NO")
              << "\n"
              << "same as VEC   : "
              << (qzResult.cigar.ops == vecResult.cigar.ops ? "yes"
                                                            : "NO")
              << "\n\n"
              << "VEC cycles     : "
              << vecCore.pipeline().totalCycles() << "\n"
              << "QUETZAL cycles : "
              << qzCore.pipeline().totalCycles() << "\n"
              << "speedup        : "
              << static_cast<double>(vecCore.pipeline().totalCycles()) /
                     static_cast<double>(qzCore.pipeline().totalCycles())
              << "x\n";
    return 0;
}
