/**
 * @file
 * Ultra-long (Oxford-Nanopore-class) reads: QUETZAL's QBUFFERs hold
 * at most 32.7 kbp directly, so longer reads go through the windowed
 * software path of the paper's Section VI. This example aligns a
 * 150 kbp read and shows the window bookkeeping, the score quality,
 * and the accelerator's cost.
 */
#include <iostream>

#include "algos/biwfa.hpp"
#include "algos/tiled.hpp"
#include "algos/wfa_engine.hpp"
#include "common/table.hpp"
#include "genomics/readsim.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

int
main()
{
    using namespace quetzal;
    using algos::Variant;

    // A 150 kbp read at 0.5% error (ONT duplex-class accuracy).
    genomics::ReadSimConfig config;
    config.readLength = 150000;
    config.errorRate = 0.005;
    config.seed = 77;
    genomics::ReadSimulator sim(config);
    const auto pair = sim.generatePairs(1).front();
    std::cout << "Read: " << pair.pattern.size() << " bp, window: "
              << pair.text.size() << " bp, injected edits: "
              << pair.trueEdits << "\n\n";

    // Reference optimum via BiWFA (O(s) memory handles this easily).
    auto ref = algos::makeWfaEngine(Variant::Ref, nullptr, nullptr);
    const std::int64_t optimal =
        algos::biwfaScore(*ref, pair.pattern, pair.text);

    TextTable table({"Window (bases)", "Windows", "Score",
                     "vs optimal", "QZ+C cycles"});
    for (std::size_t window : {8000u, 16000u, 30000u}) {
        sim::SimContext core(sim::SystemParams::withQuetzal());
        isa::VectorUnit vpu(core.pipeline());
        accel::QzUnit qz(vpu, core.params().quetzal);
        auto engine = algos::makeWfaEngine(Variant::QzC, &vpu, &qz);

        algos::TiledConfig tcfg;
        tcfg.windowBases = window;
        const auto result = algos::tiledAlign(
            *engine, pair.pattern, pair.text, tcfg);
        if (!algos::validateCigar(pair.pattern, pair.text,
                                  result.cigar)) {
            std::cerr << "invalid transcript!\n";
            return 1;
        }
        table.addRow({std::to_string(window),
                      std::to_string(algos::tiledWindowCount(
                          pair.pattern.size(), tcfg)),
                      std::to_string(result.score),
                      "+" + std::to_string(result.score - optimal),
                      std::to_string(core.pipeline().totalCycles())});
    }
    table.print(std::cout);
    std::cout << "\nOptimal edit distance (BiWFA): " << optimal
              << ". Window seams add a few edits; every transcript is "
                 "a valid alignment, and the whole read ran on a "
                 "16 KB scratchpad.\n";
    return 0;
}
