/**
 * @file
 * Read-mapping candidate filtering: the paper's use case 5.
 *
 * A mapper's seed step produces candidate (read, window) pairs, most
 * of which do not align. SneakySnake rejects the hopeless ones before
 * the aligner runs; the survivors go to WFA. Both stages share the
 * QUETZAL accelerator — no data movement or reconfiguration between
 * algorithms, just different instructions (the programmability claim).
 */
#include <iostream>

#include "algos/runner.hpp"
#include "common/table.hpp"
#include "genomics/datasets.hpp"

int
main()
{
    using namespace quetzal;
    using algos::AlgoKind;
    using algos::Variant;

    // Candidate set: 250 bp reads where half the windows are decoys
    // (swapped-in unrelated windows).
    auto dataset = genomics::makeDataset("250bp_1", 0.5);
    dataset = algos::mixWithDecoys(dataset);
    std::cout << "Filtering + aligning " << dataset.size()
              << " candidate pairs of " << dataset.readLength
              << " bp\n\n";

    TextTable table({"Variant", "Accepted", "Cycles", "Speedup"});
    std::uint64_t baseCycles = 0;
    for (Variant v : {Variant::Base, Variant::Vec, Variant::QzC}) {
        algos::RunOptions options;
        options.variant = v;
        options.verify = v == Variant::QzC; // spot-check one variant
        const auto r =
            algos::runAlgorithm(AlgoKind::SsWfa, dataset, options);
        if (v == Variant::Base)
            baseCycles = r.cycles;
        table.addRow({std::string(algos::variantName(v)),
                      std::to_string(r.accepted) + "/" +
                          std::to_string(r.pairs),
                      std::to_string(r.cycles),
                      TextTable::num(static_cast<double>(baseCycles) /
                                         static_cast<double>(r.cycles),
                                     2) +
                          "x"});
        if (v == Variant::QzC && !r.outputsMatch) {
            std::cerr << "output mismatch against the reference!\n";
            return 1;
        }
    }
    table.print(std::cout);
    std::cout << "\nEvery variant accepts the same pairs and computes "
                 "identical alignments; QUETZAL just gets there in "
                 "fewer cycles.\n";
    return 0;
}
