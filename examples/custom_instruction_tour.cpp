/**
 * @file
 * A tour of the QUETZAL ISA itself (paper Section III-A): program the
 * accelerator directly — qzconf, qzencode, qzload, qzmhm<OPN>,
 * qzcount — the way a developer would build a NEW genomics kernel on
 * top of the framework. This is the programmability pitch: no
 * hardware change, just different instruction sequences.
 */
#include <iostream>

#include "isa/vectorunit.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

int
main()
{
    using namespace quetzal;
    using accel::QzOpn;
    using accel::QzSel;

    sim::SimContext core(sim::SystemParams::withQuetzal());
    isa::VectorUnit vpu(core.pipeline());
    accel::QzUnit qz(vpu, core.params().quetzal);

    const std::string pattern = "ACGTACGTACGTTTTTACGTACGTACGTACGT";
    const std::string text = "ACGTACGTACGTTTTAACGTACGTACGTACGT";

    // 1. qzconf: element counts and the 2-bit DNA encoding.
    qz.qzconf(pattern.size(), text.size(),
              genomics::ElementSize::Bits2);

    // 2. qzencode: stream both sequences through the data encoder
    //    into the QBUFFERs (stageSequence2bit wraps the load+encode
    //    loop of Fig. 6 line 3).
    qz.stageSequence2bit(QzSel::Buf0, pattern);
    qz.stageSequence2bit(QzSel::Buf1, text);

    // 3. qzload: indexed reads straight from the scratchpad — eight
    //    lanes, two cycles, no cache hierarchy involved.
    isa::VReg idx;
    for (unsigned l = 0; l < 8; ++l)
        idx.setU64(l, 4 * l);
    const isa::VReg bases = qz.qzload(idx, QzSel::Buf0, vpu.pTrue(8));
    std::cout << "qzload: 2-bit codes of pattern[0,4,8,...]: ";
    for (unsigned l = 0; l < 8; ++l)
        std::cout << bases.u64(l) << ' ';
    std::cout << "\n";

    // 4. qzmhm<cmpeq>: compare pattern vs text element-by-element.
    isa::VReg pos;
    for (unsigned l = 0; l < 8; ++l)
        pos.setU64(l, 12 + l);
    const isa::VReg eq = qz.qzmhm(QzOpn::CmpEq, pos, pos, vpu.pTrue(8));
    std::cout << "qzmhm<cmpeq> at positions 12..19: ";
    for (unsigned l = 0; l < 8; ++l)
        std::cout << eq.u64(l);
    std::cout << "  (0 marks the mismatches)\n";

    // 5. qzmhm<qzcount>: one instruction counts the whole run of
    //    consecutive matches per lane.
    isa::VReg zero = vpu.dup64(0);
    const isa::VReg run = qz.qzmhm(QzOpn::Count, zero, zero,
                                   vpu.pTrue(1), 1);
    std::cout << "qzmhm<qzcount> from position 0: " << run.u64(0)
              << " consecutive matching bases\n";

    // 6. The cost: how many cycles did this whole program take?
    std::cout << "\nSimulated cycles: " << core.pipeline().totalCycles()
              << " for " << core.pipeline().instructions()
              << " instructions (incl. staging both sequences)\n";
    std::cout << "QBUFFER reads bypassed the cache hierarchy: "
              << core.mem().totalRequests()
              << " cache requests total (staging loads only)\n";
    return 0;
}
