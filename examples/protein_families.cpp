/**
 * @file
 * Protein alignment (the paper's use case 4): all-vs-all pairwise
 * alignment inside BAliBase-style protein families, using QUETZAL's
 * 8-bit encoding mode for the 20-letter amino-acid alphabet.
 */
#include <iostream>
#include <map>

#include "algos/wfa.hpp"
#include "algos/wfa_engine.hpp"
#include "common/table.hpp"
#include "genomics/protein.hpp"
#include "quetzal/qzunit.hpp"
#include "sim/context.hpp"

int
main()
{
    using namespace quetzal;
    using algos::Variant;

    genomics::ProteinFamilyConfig config;
    config.familyCount = 2;
    config.membersPerFamily = 4;
    config.ancestorLength = 350;
    const auto families = genomics::generateProteinFamilies(config);

    sim::SimContext core(sim::SystemParams::withQuetzal());
    isa::VectorUnit vpu(core.pipeline());
    accel::QzUnit qz(vpu, core.params().quetzal);
    auto engine = algos::makeWfaEngine(Variant::QzC, &vpu, &qz);
    auto ref = algos::makeWfaEngine(Variant::Ref, nullptr, nullptr);

    TextTable table({"Family", "Pair", "Length A", "Length B",
                     "Edit distance", "Identity"});
    std::size_t familyId = 0;
    for (const auto &family : families) {
        for (const auto &pair : family.allPairs()) {
            // Proteins need the 8-bit QBUFFER encoding (20 letters).
            const auto got = algos::wfaAlign(
                *engine, pair.pattern, pair.text, true,
                genomics::ElementSize::Bits8);
            const auto want =
                algos::wfaAlign(*ref, pair.pattern, pair.text);
            if (got.score != want.score ||
                got.cigar.ops != want.cigar.ops) {
                std::cerr << "accelerated result diverged from the "
                             "reference!\n";
                return 1;
            }
            std::size_t matches = 0;
            for (char op : got.cigar.ops)
                matches += op == 'M';
            const double identity =
                100.0 * static_cast<double>(matches) /
                static_cast<double>(got.cigar.ops.size());
            table.addRow({std::to_string(familyId),
                          std::to_string(pair.pattern.size() % 97),
                          std::to_string(pair.pattern.size()),
                          std::to_string(pair.text.size()),
                          std::to_string(got.score),
                          TextTable::num(identity, 1) + "%"});
        }
        ++familyId;
    }
    table.print(std::cout);
    std::cout << "\nSimulated cycles on the QUETZAL core: "
              << core.pipeline().totalCycles() << " ("
              << core.pipeline().instructions() << " instructions)\n";
    return 0;
}
